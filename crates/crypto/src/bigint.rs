//! Arbitrary-precision unsigned integers for the public-key substrate.
//!
//! A deliberately small big-integer implementation: little-endian `u64`
//! limbs, schoolbook multiplication and binary long division. At SNIPE's
//! simulation-grade key sizes (384–768 bit moduli) this is fast enough
//! for thousands of signature operations per second, and having no
//! `unsafe` and no clever normalization keeps it easy to audit against
//! the textbook algorithms.

use std::cmp::Ordering;
use std::fmt;

use snipe_util::rng::Xoshiro256;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing zero limbs (so `limbs.is_empty()`
/// iff the value is zero).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Parse big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut v = BigUint { limbs };
        v.normalize();
        v
    }

    /// Serialize as minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        let mut first = true;
        for &limb in self.limbs.iter().rev() {
            let bytes = limb.to_be_bytes();
            if first {
                let skip = bytes.iter().take_while(|&&b| b == 0).count();
                out.extend_from_slice(&bytes[skip..]);
                first = false;
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Parse a lowercase/uppercase hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = s.as_bytes();
        let mut i = 0;
        if s.len() % 2 == 1 {
            bytes.push(u8::from_str_radix(std::str::from_utf8(&s[..1]).ok()?, 16).ok()?);
            i = 1;
        }
        while i < s.len() {
            bytes.push(u8::from_str_radix(std::str::from_utf8(&s[i..i + 2]).ok()?, 16).ok()?);
            i += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Render as lowercase hex ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        use std::fmt::Write;
        write!(s, "{:x}", bytes[0]).expect("write to String cannot fail");
        for b in &bytes[1..] {
            write!(s, "{b:02x}").expect("write to String cannot fail");
        }
        s
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (false beyond the top).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// `self + rhs`.
    pub fn add(&self, rhs: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= rhs.limbs.len() { (self, rhs) } else { (rhs, self) };
        let mut out = Vec::with_capacity(a.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.limbs.len() {
            let x = a.limbs[i] as u128 + *b.limbs.get(i).unwrap_or(&0) as u128 + carry as u128;
            out.push(x as u64);
            carry = (x >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut v = BigUint { limbs: out };
        v.normalize();
        v
    }

    /// `self - rhs`.
    ///
    /// # Panics
    /// Panics if `rhs > self`.
    pub fn sub(&self, rhs: &BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = *rhs.limbs.get(i).unwrap_or(&0) as u128 + borrow as u128;
            let a = self.limbs[i] as u128;
            if a >= b {
                out.push((a - b) as u64);
                borrow = 0;
            } else {
                out.push((a + (1u128 << 64) - b) as u64);
                borrow = 1;
            }
        }
        let mut v = BigUint { limbs: out };
        v.normalize();
        v
    }

    /// Schoolbook `self * rhs`.
    pub fn mul(&self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let x = a as u128 * b as u128 + out[i + j] as u128 + carry as u128;
                out[i + j] = x as u64;
                carry = (x >> 64) as u64;
            }
            out[i + rhs.limbs.len()] = out[i + rhs.limbs.len()].wrapping_add(carry);
        }
        let mut v = BigUint { limbs: out };
        v.normalize();
        v
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            if bit_shift == 0 {
                out[i + limb_shift] |= l;
            } else {
                out[i + limb_shift] |= l << bit_shift;
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        let mut v = BigUint { limbs: out };
        v.normalize();
        v
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut l = self.limbs[i] >> bit_shift;
            if bit_shift != 0 {
                if let Some(&hi) = self.limbs.get(i + 1) {
                    l |= hi << (64 - bit_shift);
                }
            }
            out.push(l);
        }
        let mut v = BigUint { limbs: out };
        v.normalize();
        v
    }

    /// Binary long division: returns `(self / rhs, self % rhs)`.
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, rhs: &BigUint) -> (BigUint, BigUint) {
        assert!(!rhs.is_zero(), "BigUint division by zero");
        if self < rhs {
            return (BigUint::zero(), self.clone());
        }
        let bits = self.bit_len();
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = BigUint::zero();
        for i in (0..bits).rev() {
            // rem = rem << 1 | bit(i)
            rem = rem.shl(1);
            if self.bit(i) {
                if rem.limbs.is_empty() {
                    rem.limbs.push(1);
                } else {
                    rem.limbs[0] |= 1;
                }
            }
            if rem >= *rhs {
                rem = rem.sub(rhs);
                quotient[i / 64] |= 1 << (i % 64);
            }
        }
        let mut q = BigUint { limbs: quotient };
        q.normalize();
        (q, rem)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `(self + rhs) mod m`, where both inputs are already `< m`.
    pub fn mod_add(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(rhs);
        if s >= *m {
            s.sub(m)
        } else {
            s
        }
    }

    /// `(self - rhs) mod m`, where both inputs are already `< m`.
    pub fn mod_sub(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        if self >= rhs {
            self.sub(rhs)
        } else {
            self.add(m).sub(rhs)
        }
    }

    /// `(self * rhs) mod m`.
    pub fn mod_mul(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        self.mul(rhs).rem(m)
    }

    /// `self^exp mod m` by square-and-multiply (left-to-right).
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn mod_exp(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "mod_exp modulus is zero");
        if m.is_one() {
            return BigUint::zero();
        }
        let base = self.rem(m);
        let mut acc = BigUint::one();
        for i in (0..exp.bit_len()).rev() {
            acc = acc.mod_mul(&acc, m);
            if exp.bit(i) {
                acc = acc.mod_mul(&base, m);
            }
        }
        acc
    }

    /// Uniform random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn random_below(rng: &mut Xoshiro256, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below bound is zero");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) { u64::MAX } else { (1u64 << (bits % 64)) - 1 };
        loop {
            let mut l: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
            if let Some(last) = l.last_mut() {
                *last &= top_mask;
            }
            let mut v = BigUint { limbs: l };
            v.normalize();
            if v < *bound {
                return v;
            }
        }
    }

    /// Uniform random value with exactly `bits` bits (top bit set).
    pub fn random_bits(rng: &mut Xoshiro256, bits: usize) -> BigUint {
        assert!(bits > 0);
        let limbs = bits.div_ceil(64);
        let mut l: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
        let top_bit = (bits - 1) % 64;
        let last = l.last_mut().expect("at least one limb");
        *last &= if top_bit == 63 { u64::MAX } else { (1u64 << (top_bit + 1)) - 1 };
        *last |= 1u64 << top_bit;
        let mut v = BigUint { limbs: l };
        v.normalize();
        v
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random
    /// bases (plus a base-2 round and small-prime trial division).
    pub fn is_probable_prime(&self, rng: &mut Xoshiro256, rounds: usize) -> bool {
        const SMALL_PRIMES: [u64; 30] = [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83,
            89, 97, 101, 103, 107, 109, 113,
        ];
        if self.limbs.len() == 1 {
            let v = self.limbs[0];
            if v < 2 {
                return false;
            }
            if SMALL_PRIMES.contains(&v) {
                return true;
            }
        }
        if self.is_zero() || self.is_even() {
            return false;
        }
        for &p in &SMALL_PRIMES[1..] {
            let pp = BigUint::from_u64(p);
            if self.rem(&pp).is_zero() {
                return *self == pp;
            }
        }
        // Write self-1 = d * 2^s.
        let one = BigUint::one();
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        let two = BigUint::from_u64(2);
        let n_minus_2 = self.sub(&two);
        'witness: for round in 0..=rounds {
            let a = if round == 0 {
                two.clone()
            } else {
                // a in [2, n-2]
                BigUint::random_below(rng, &n_minus_2.sub(&one)).add(&two)
            };
            let mut x = a.mod_exp(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..s - 1 {
                x = x.mod_mul(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn byte_round_trip() {
        let v = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(v.to_bytes_be(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 7]).to_bytes_be(), vec![7]);
        assert!(BigUint::from_bytes_be(&[]).is_zero());
    }

    #[test]
    fn hex_round_trip() {
        let v = BigUint::from_hex("deadbeefcafebabe1234").unwrap();
        assert_eq!(v.to_hex(), "deadbeefcafebabe1234");
        assert_eq!(BigUint::zero().to_hex(), "0");
        assert_eq!(BigUint::from_hex("f").unwrap(), n(15));
        assert!(BigUint::from_hex("xyz").is_none());
        assert!(BigUint::from_hex("").is_none());
    }

    #[test]
    fn add_sub_small_and_carry() {
        assert_eq!(n(2).add(&n(3)), n(5));
        let max = BigUint::from_u64(u64::MAX);
        let sum = max.add(&n(1));
        assert_eq!(sum.bit_len(), 65);
        assert_eq!(sum.sub(&n(1)), max);
        assert_eq!(n(5).sub(&n(5)), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(1).sub(&n(2));
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(n(1000).mul(&n(1000)), n(1_000_000));
        let a = BigUint::from_hex("ffffffffffffffff").unwrap();
        let sq = a.mul(&a);
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
        assert!(n(0).mul(&a).is_zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl(64).bit_len(), 65);
        assert_eq!(n(1).shl(64).shr(64), n(1));
        assert_eq!(n(0b1011).shr(1), n(0b101));
        assert_eq!(n(3).shl(127).shr(120), n(3 << 7));
    }

    #[test]
    fn div_rem_matches_u128() {
        let cases: [(u128, u128); 6] = [
            (12345678901234567890, 97),
            (u128::MAX, 1),
            (1 << 100, (1 << 50) + 3),
            (999, 1000),
            (1000, 1000),
            (0, 5),
        ];
        for (a, b) in cases {
            let ba = BigUint::from_bytes_be(&a.to_be_bytes());
            let bb = BigUint::from_bytes_be(&b.to_be_bytes());
            let (q, r) = ba.div_rem(&bb);
            assert_eq!(q, BigUint::from_bytes_be(&(a / b).to_be_bytes()), "{a}/{b}");
            assert_eq!(r, BigUint::from_bytes_be(&(a % b).to_be_bytes()), "{a}%{b}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn mod_exp_known_values() {
        // 2^10 mod 1000 = 24
        assert_eq!(n(2).mod_exp(&n(10), &n(1000)), n(24));
        // Fermat: a^(p-1) = 1 mod p for prime p
        let p = n(1_000_000_007);
        assert_eq!(n(12345).mod_exp(&n(1_000_000_006), &p), n(1));
        // x^0 = 1
        assert_eq!(n(999).mod_exp(&n(0), &p), n(1));
        // mod 1 = 0
        assert_eq!(n(5).mod_exp(&n(5), &n(1)), n(0));
    }

    #[test]
    fn mod_add_sub() {
        let m = n(97);
        assert_eq!(n(90).mod_add(&n(10), &m), n(3));
        assert_eq!(n(3).mod_sub(&n(10), &m), n(90));
        assert_eq!(n(10).mod_sub(&n(3), &m), n(7));
    }

    #[test]
    fn random_below_in_range_and_varied() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let bound = BigUint::from_hex("ffffffffffffffffffffffff").unwrap();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
            distinct.insert(v.to_hex());
        }
        assert!(distinct.len() > 40);
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        for bits in [1, 7, 64, 65, 160] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
    }

    #[test]
    fn miller_rabin_classifies_small_numbers() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let primes = [2u64, 3, 5, 7, 97, 101, 127, 65537, 1_000_000_007];
        let composites = [1u64, 4, 6, 9, 15, 91, 561, 1105, 65535, 1_000_000_008];
        for p in primes {
            assert!(n(p).is_probable_prime(&mut rng, 16), "{p} should be prime");
        }
        for c in composites {
            assert!(!n(c).is_probable_prime(&mut rng, 16), "{c} should be composite");
        }
    }

    #[test]
    fn miller_rabin_large_known_prime() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        // 2^127 - 1 is a Mersenne prime.
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(m127.is_probable_prime(&mut rng, 8));
        // 2^128 - 1 is composite.
        let c = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!c.is_probable_prime(&mut rng, 8));
    }

    #[test]
    fn ordering() {
        assert!(n(1) < n(2));
        assert!(BigUint::from_hex("10000000000000000").unwrap() > n(u64::MAX));
        assert_eq!(n(7).cmp(&n(7)), std::cmp::Ordering::Equal);
    }
}
