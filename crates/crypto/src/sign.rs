//! Schnorr signatures and key pairs.
//!
//! Every SNIPE principal (user, host, resource manager, process) owns a
//! key pair; public keys live in RC metadata (paper §4). Signatures use
//! the classic Schnorr scheme over [`SchnorrGroup`]:
//!
//! * sign:   pick `k ∈ [1,q)`, `r = g^k mod p`, `e = H(r ‖ m) mod q`,
//!   `s = (k − x·e) mod q`; the signature is `(e, s)`.
//! * verify: `r' = g^s · y^e mod p`, accept iff `H(r' ‖ m) mod q == e`.

use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::rng::Xoshiro256;

use crate::bigint::BigUint;
use crate::group::SchnorrGroup;
use crate::sha256::Sha256;

/// A private signing key (`x ∈ [1, q)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecretKey {
    x: BigUint,
}

/// A public verification key (`y = g^x mod p`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PublicKey {
    y: BigUint,
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    e: BigUint,
    s: BigUint,
}

/// A secret/public key pair.
#[derive(Clone, Debug)]
pub struct KeyPair {
    /// The private half.
    pub secret: SecretKey,
    /// The public half.
    pub public: PublicKey,
}

/// Hash `r ‖ msg` into a challenge in `[0, q)`.
fn challenge(r: &BigUint, msg: &[u8], group: &SchnorrGroup) -> BigUint {
    let mut h = Sha256::new();
    let rb = r.to_bytes_be();
    h.update(&(rb.len() as u32).to_be_bytes());
    h.update(&rb);
    h.update(msg);
    BigUint::from_bytes_be(&h.finalize()).rem(&group.q)
}

impl KeyPair {
    /// Generate a fresh key pair over the given group.
    pub fn generate(rng: &mut Xoshiro256, group: &SchnorrGroup) -> KeyPair {
        let one = BigUint::one();
        let x = BigUint::random_below(rng, &group.q.sub(&one)).add(&one);
        let y = group.g.mod_exp(&x, &group.p);
        KeyPair { secret: SecretKey { x }, public: PublicKey { y } }
    }

    /// Generate over [`SchnorrGroup::default_group`].
    pub fn generate_default(rng: &mut Xoshiro256) -> KeyPair {
        Self::generate(rng, SchnorrGroup::default_group())
    }

    /// Sign a message.
    pub fn sign(&self, rng: &mut Xoshiro256, msg: &[u8]) -> Signature {
        self.sign_in(rng, msg, SchnorrGroup::default_group())
    }

    /// Sign over an explicit group.
    pub fn sign_in(&self, rng: &mut Xoshiro256, msg: &[u8], group: &SchnorrGroup) -> Signature {
        let one = BigUint::one();
        loop {
            let k = BigUint::random_below(rng, &group.q.sub(&one)).add(&one);
            let r = group.g.mod_exp(&k, &group.p);
            let e = challenge(&r, msg, group);
            // s = k - x*e mod q
            let xe = self.secret.x.mod_mul(&e, &group.q);
            let s = k.rem(&group.q).mod_sub(&xe, &group.q);
            if !s.is_zero() {
                return Signature { e, s };
            }
        }
    }
}

impl PublicKey {
    /// Verify a signature over the default group.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        self.verify_in(msg, sig, SchnorrGroup::default_group())
    }

    /// Verify over an explicit group.
    pub fn verify_in(&self, msg: &[u8], sig: &Signature, group: &SchnorrGroup) -> bool {
        if sig.e >= group.q || sig.s >= group.q || self.y.is_zero() || self.y >= group.p {
            return false;
        }
        // r' = g^s * y^e mod p
        let gs = group.g.mod_exp(&sig.s, &group.p);
        let ye = self.y.mod_exp(&sig.e, &group.p);
        let r = gs.mod_mul(&ye, &group.p);
        challenge(&r, msg, group) == sig.e
    }

    /// A short stable identifier: SHA-256 of the public value.
    pub fn fingerprint(&self) -> [u8; 32] {
        crate::sha256::sha256(&self.y.to_bytes_be())
    }

    /// Fingerprint as hex for embedding in RC metadata values.
    pub fn fingerprint_hex(&self) -> String {
        crate::sha256::hex(&self.fingerprint())
    }

    /// Raw group element (used by the DH handshake).
    pub fn element(&self) -> &BigUint {
        &self.y
    }

    /// Construct from a raw group element (validated at use sites).
    pub fn from_element(y: BigUint) -> PublicKey {
        PublicKey { y }
    }
}

impl WireEncode for PublicKey {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(&self.y.to_bytes_be());
    }
}

impl WireDecode for PublicKey {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        let b = dec.get_bytes()?;
        Ok(PublicKey { y: BigUint::from_bytes_be(&b) })
    }
}

impl WireEncode for Signature {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(&self.e.to_bytes_be());
        enc.put_bytes(&self.s.to_bytes_be());
    }
}

impl WireDecode for Signature {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        let e = BigUint::from_bytes_be(&dec.get_bytes()?);
        let s = BigUint::from_bytes_be(&dec.get_bytes()?);
        if e.is_zero() && s.is_zero() {
            return Err(SnipeError::Codec("degenerate signature".into()));
        }
        Ok(Signature { e, s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_group() -> SchnorrGroup {
        // Small parameters keep tests fast; validity is checked in group.rs.
        SchnorrGroup::generate(128, 64, 77)
    }

    #[test]
    fn sign_verify_round_trip() {
        let group = small_group();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let kp = KeyPair::generate(&mut rng, &group);
        let sig = kp.sign_in(&mut rng, b"hello snipe", &group);
        assert!(kp.public.verify_in(b"hello snipe", &sig, &group));
    }

    #[test]
    fn tampered_message_rejected() {
        let group = small_group();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let kp = KeyPair::generate(&mut rng, &group);
        let sig = kp.sign_in(&mut rng, b"original", &group);
        assert!(!kp.public.verify_in(b"tampered", &sig, &group));
    }

    #[test]
    fn wrong_key_rejected() {
        let group = small_group();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let kp1 = KeyPair::generate(&mut rng, &group);
        let kp2 = KeyPair::generate(&mut rng, &group);
        let sig = kp1.sign_in(&mut rng, b"msg", &group);
        assert!(!kp2.public.verify_in(b"msg", &sig, &group));
    }

    #[test]
    fn signature_wire_round_trip() {
        let group = small_group();
        let mut rng = Xoshiro256::seed_from_u64(4);
        let kp = KeyPair::generate(&mut rng, &group);
        let sig = kp.sign_in(&mut rng, b"wire", &group);
        let bytes = sig.encode_to_bytes();
        let back = Signature::decode_from_bytes(bytes).unwrap();
        assert_eq!(back, sig);
        assert!(kp.public.verify_in(b"wire", &back, &group));
    }

    #[test]
    fn public_key_wire_round_trip_and_fingerprint() {
        let group = small_group();
        let mut rng = Xoshiro256::seed_from_u64(5);
        let kp = KeyPair::generate(&mut rng, &group);
        let back = PublicKey::decode_from_bytes(kp.public.encode_to_bytes()).unwrap();
        assert_eq!(back, kp.public);
        assert_eq!(back.fingerprint(), kp.public.fingerprint());
        assert_eq!(kp.public.fingerprint_hex().len(), 64);
    }

    #[test]
    fn default_group_signatures_work() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let kp = KeyPair::generate_default(&mut rng);
        let sig = kp.sign(&mut rng, b"default group");
        assert!(kp.public.verify(b"default group", &sig));
        assert!(!kp.public.verify(b"default groupX", &sig));
    }

    #[test]
    fn out_of_range_signature_rejected() {
        let group = small_group();
        let mut rng = Xoshiro256::seed_from_u64(7);
        let kp = KeyPair::generate(&mut rng, &group);
        let sig = Signature { e: group.q.clone(), s: BigUint::one() };
        assert!(!kp.public.verify_in(b"m", &sig, &group));
    }
}
