//! Key certificates as signed subsets of RC metadata.
//!
//! Paper §4: "Each principal's public key is stored as an attribute of
//! that principal's RC metadata. A signed subset of RC metadata serves
//! as a key certificate. Before a client will consider a signed
//! statement to be valid, the key certificate must itself be signed by
//! a party whom that client trusts for that particular purpose."
//!
//! A [`Certificate`] therefore carries a subject URI, a list of
//! `name=value` assertions (including the subject's public key), the
//! issuer's fingerprint and the issuer's signature over the canonical
//! encoding. A [`TrustStore`] records which issuer keys a client trusts
//! for which [`TrustPurpose`]s.

use std::collections::HashMap;

use snipe_util::codec::{decode_seq, encode_seq, Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::rng::Xoshiro256;

use crate::sign::{KeyPair, PublicKey, Signature};

/// What a trusted key is trusted *for* — per the paper, "each client or
/// service may determine its own requirements for which parties to
/// trust for which purposes".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrustPurpose {
    /// May certify user identities and their access rights.
    UserCertification,
    /// May certify host identities.
    HostCertification,
    /// May authorize use of managed resources (resource managers).
    ResourceAuthorization,
    /// May sign mobile code for playground execution.
    CodeSigning,
    /// May certify metadata (RC server replication peers).
    MetadataCertification,
}

impl TrustPurpose {
    fn tag(self) -> u8 {
        match self {
            TrustPurpose::UserCertification => 0,
            TrustPurpose::HostCertification => 1,
            TrustPurpose::ResourceAuthorization => 2,
            TrustPurpose::CodeSigning => 3,
            TrustPurpose::MetadataCertification => 4,
        }
    }
}

/// One `name=value` assertion inside a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertClaim {
    /// Attribute name, e.g. `public-key`, `allowed-hosts`.
    pub name: String,
    /// Attribute value.
    pub value: String,
}

impl WireEncode for CertClaim {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_str(&self.value);
    }
}

impl WireDecode for CertClaim {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        Ok(CertClaim { name: dec.get_str()?, value: dec.get_str()? })
    }
}

/// A signed subset of RC metadata: SNIPE's certificate format.
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// URI of the principal the claims are about.
    pub subject: String,
    /// The subject's public key.
    pub subject_key: PublicKey,
    /// Additional signed assertions (access rights, realms, ...).
    pub claims: Vec<CertClaim>,
    /// Fingerprint (hex) of the issuing key.
    pub issuer: String,
    /// Issuer's signature over the canonical body encoding.
    pub signature: Signature,
}

impl Certificate {
    /// Canonical bytes covered by the signature.
    fn body_bytes(
        subject: &str,
        subject_key: &PublicKey,
        claims: &[CertClaim],
        issuer: &str,
    ) -> bytes::Bytes {
        let mut enc = Encoder::new();
        enc.put_str(subject);
        subject_key.encode(&mut enc);
        encode_seq(&mut enc, claims.iter());
        enc.put_str(issuer);
        enc.finish()
    }

    /// Issue a certificate: `issuer_kp` signs `(subject, key, claims)`.
    pub fn issue(
        rng: &mut Xoshiro256,
        issuer_kp: &KeyPair,
        subject: impl Into<String>,
        subject_key: PublicKey,
        claims: Vec<CertClaim>,
    ) -> Certificate {
        let subject = subject.into();
        let issuer = issuer_kp.public.fingerprint_hex();
        let body = Self::body_bytes(&subject, &subject_key, &claims, &issuer);
        let signature = issuer_kp.sign(rng, &body);
        Certificate { subject, subject_key, claims, issuer, signature }
    }

    /// Verify the signature against a candidate issuer key.
    pub fn verify_with(&self, issuer_key: &PublicKey) -> bool {
        if issuer_key.fingerprint_hex() != self.issuer {
            return false;
        }
        let body = Self::body_bytes(&self.subject, &self.subject_key, &self.claims, &self.issuer);
        issuer_key.verify(&body, &self.signature)
    }

    /// Look up a claim value by name.
    pub fn claim(&self, name: &str) -> Option<&str> {
        self.claims.iter().find(|c| c.name == name).map(|c| c.value.as_str())
    }
}

impl WireEncode for Certificate {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.subject);
        self.subject_key.encode(enc);
        encode_seq(enc, self.claims.iter());
        enc.put_str(&self.issuer);
        self.signature.encode(enc);
    }
}

impl WireDecode for Certificate {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        Ok(Certificate {
            subject: dec.get_str()?,
            subject_key: PublicKey::decode(dec)?,
            claims: decode_seq(dec)?,
            issuer: dec.get_str()?,
            signature: Signature::decode(dec)?,
        })
    }
}

/// Which keys this client trusts, per purpose.
#[derive(Clone, Debug, Default)]
pub struct TrustStore {
    // purpose tag -> issuer fingerprint hex -> key
    trusted: HashMap<(u8, String), PublicKey>,
}

impl TrustStore {
    /// Empty store: trusts no one.
    pub fn new() -> Self {
        TrustStore::default()
    }

    /// Trust `key` for `purpose`.
    pub fn trust(&mut self, purpose: TrustPurpose, key: PublicKey) {
        self.trusted.insert((purpose.tag(), key.fingerprint_hex()), key);
    }

    /// Stop trusting a key for a purpose.
    pub fn revoke(&mut self, purpose: TrustPurpose, key: &PublicKey) {
        self.trusted.remove(&(purpose.tag(), key.fingerprint_hex()));
    }

    /// Number of (purpose, key) trust entries.
    pub fn len(&self) -> usize {
        self.trusted.len()
    }

    /// True if no keys are trusted.
    pub fn is_empty(&self) -> bool {
        self.trusted.is_empty()
    }

    /// Verify that `cert` was issued by a key trusted for `purpose`.
    ///
    /// On success returns the certified subject key, ready to verify
    /// statements made by the subject.
    pub fn verify<'a>(
        &self,
        purpose: TrustPurpose,
        cert: &'a Certificate,
    ) -> SnipeResult<&'a PublicKey> {
        let issuer_key =
            self.trusted.get(&(purpose.tag(), cert.issuer.clone())).ok_or_else(|| {
                SnipeError::AuthenticationFailed(format!(
                    "issuer {} not trusted for {purpose:?}",
                    &cert.issuer[..12.min(cert.issuer.len())]
                ))
            })?;
        if !cert.verify_with(issuer_key) {
            return Err(SnipeError::AuthenticationFailed(format!(
                "bad signature on certificate for {}",
                cert.subject
            )));
        }
        Ok(&cert.subject_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::SchnorrGroup;

    fn setup() -> (Xoshiro256, KeyPair, KeyPair, SchnorrGroup) {
        let group = SchnorrGroup::generate(128, 64, 42);
        let mut rng = Xoshiro256::seed_from_u64(10);
        let ca = KeyPair::generate(&mut rng, &group);
        let user = KeyPair::generate(&mut rng, &group);
        (rng, ca, user, group)
    }

    // NOTE: these tests sign with the *default* group via KeyPair::sign,
    // so generate keys against the default group for correctness.
    fn default_setup() -> (Xoshiro256, KeyPair, KeyPair) {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let ca = KeyPair::generate_default(&mut rng);
        let user = KeyPair::generate_default(&mut rng);
        (rng, ca, user)
    }

    #[test]
    fn issue_and_verify_certificate() {
        let (mut rng, ca, user) = default_setup();
        let cert = Certificate::issue(
            &mut rng,
            &ca,
            "urn:snipe:user:alice",
            user.public.clone(),
            vec![CertClaim { name: "allowed-hosts".into(), value: "utk.edu".into() }],
        );
        assert!(cert.verify_with(&ca.public));
        assert_eq!(cert.claim("allowed-hosts"), Some("utk.edu"));
        assert_eq!(cert.claim("missing"), None);
    }

    #[test]
    fn tampered_claims_fail_verification() {
        let (mut rng, ca, user) = default_setup();
        let mut cert =
            Certificate::issue(&mut rng, &ca, "urn:snipe:user:bob", user.public.clone(), vec![]);
        cert.claims.push(CertClaim { name: "admin".into(), value: "true".into() });
        assert!(!cert.verify_with(&ca.public));
    }

    #[test]
    fn trust_store_enforces_purpose() {
        let (mut rng, ca, user) = default_setup();
        let cert =
            Certificate::issue(&mut rng, &ca, "urn:snipe:user:carol", user.public.clone(), vec![]);
        let mut store = TrustStore::new();
        store.trust(TrustPurpose::HostCertification, ca.public.clone());
        // Trusted for hosts, not users:
        assert!(store.verify(TrustPurpose::UserCertification, &cert).is_err());
        store.trust(TrustPurpose::UserCertification, ca.public.clone());
        let key = store.verify(TrustPurpose::UserCertification, &cert).unwrap();
        assert_eq!(key, &user.public);
    }

    #[test]
    fn revoked_issuer_rejected() {
        let (mut rng, ca, user) = default_setup();
        let cert =
            Certificate::issue(&mut rng, &ca, "urn:snipe:user:dave", user.public.clone(), vec![]);
        let mut store = TrustStore::new();
        store.trust(TrustPurpose::UserCertification, ca.public.clone());
        assert!(store.verify(TrustPurpose::UserCertification, &cert).is_ok());
        store.revoke(TrustPurpose::UserCertification, &ca.public);
        assert!(store.verify(TrustPurpose::UserCertification, &cert).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn untrusted_self_signed_rejected() {
        let (mut rng, _ca, user) = default_setup();
        let rogue = Certificate::issue(
            &mut rng,
            &user,
            "urn:snipe:user:mallory",
            user.public.clone(),
            vec![],
        );
        let store = TrustStore::new();
        let err = store.verify(TrustPurpose::UserCertification, &rogue).unwrap_err();
        assert_eq!(err.kind(), "auth-failed");
    }

    #[test]
    fn certificate_wire_round_trip() {
        let (mut rng, ca, user) = default_setup();
        let cert = Certificate::issue(
            &mut rng,
            &ca,
            "urn:snipe:proc:42",
            user.public.clone(),
            vec![CertClaim { name: "k".into(), value: "v".into() }],
        );
        let back = Certificate::decode_from_bytes(cert.encode_to_bytes()).unwrap();
        assert_eq!(back, cert);
        assert!(back.verify_with(&ca.public));
    }

    #[test]
    fn non_default_group_keys_still_make_certs() {
        // Certificates sign with the default group regardless of which
        // group the *subject* key lives in; exercise the mixed case.
        let (mut rng, _ca_small, user_small, _g) = setup();
        let mut drng = Xoshiro256::seed_from_u64(11);
        let ca = KeyPair::generate_default(&mut drng);
        let cert = Certificate::issue(&mut rng, &ca, "urn:x", user_small.public.clone(), vec![]);
        assert!(cert.verify_with(&ca.public));
    }
}
