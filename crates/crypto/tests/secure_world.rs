//! §4 end-to-end over the simulator: a mutually authenticated secure
//! channel between two hosts, with an on-path attacker whose replays
//! and forgeries are detected — "an authenticated connection ... able
//! to detect connection hijacking".
//!
//! The shared Ethernet segment is modelled honestly: the sender
//! broadcasts a copy of every record to the sniffer host (a passive tap
//! on a 1997 hub), which then mounts replay and bit-flip attacks
//! against the receiver.

use bytes::Bytes;
use snipe_crypto::channel::{Handshake, HandshakeMsg, Record, Role, SecureChannel};
use snipe_crypto::sign::KeyPair;
use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::rng::Xoshiro256;
use snipe_util::time::SimDuration;
use std::sync::{Arc, Mutex};

fn frame_handshake(m: &HandshakeMsg) -> Bytes {
    let mut e = Encoder::new();
    e.put_u8(1);
    m.encode(&mut e);
    e.finish()
}

fn frame_record(r: &Record) -> Bytes {
    let mut e = Encoder::new();
    e.put_u8(2);
    r.encode(&mut e);
    e.finish()
}

/// The sender: handshakes with B (mutually authenticated), then sends
/// its records to B *and* a copy to the tap.
struct Sender {
    identity: KeyPair,
    peer_key: snipe_crypto::sign::PublicKey,
    peer: Endpoint,
    tap: Endpoint,
    pending: Option<Handshake>,
    to_send: Vec<&'static str>,
}

impl Actor for Sender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let mut rng = Xoshiro256::seed_from_u64(100);
                let hs = Handshake::start(&mut rng, Role::Initiator, Some(&self.identity));
                ctx.send(self.peer, frame_handshake(hs.message()));
                self.pending = Some(hs);
            }
            Event::Packet { payload, .. } => {
                let mut d = Decoder::new(payload);
                if d.get_u8() != Ok(1) {
                    return;
                }
                let Ok(msg) = HandshakeMsg::decode(&mut d) else {
                    return;
                };
                let Some(hs) = self.pending.take() else {
                    return;
                };
                let Ok(mut ch) = hs.complete(&msg, Some(&self.peer_key)) else {
                    return;
                };
                for text in self.to_send.drain(..) {
                    let rec = ch.seal(text.as_bytes());
                    let framed = frame_record(&rec);
                    ctx.send(self.peer, framed.clone());
                    ctx.send(self.tap, framed); // the hub "leaks" a copy
                }
            }
            _ => {}
        }
    }
}

/// The receiver: accepts the handshake, opens records, counts rejects.
struct Receiver {
    identity: KeyPair,
    peer_key: snipe_crypto::sign::PublicKey,
    channel: Option<SecureChannel>,
    pending: Option<Handshake>,
    accepted: Arc<Mutex<Vec<String>>>,
    rejected: Arc<Mutex<u32>>,
}

impl Actor for Receiver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        let Event::Packet { from, payload } = event else {
            return;
        };
        let mut d = Decoder::new(payload);
        let Ok(kind) = d.get_u8() else { return };
        match kind {
            1 => {
                let Ok(msg) = HandshakeMsg::decode(&mut d) else {
                    return;
                };
                let mut rng = Xoshiro256::seed_from_u64(200);
                let hs = Handshake::start(&mut rng, Role::Responder, Some(&self.identity));
                ctx.send(from, frame_handshake(hs.message()));
                self.pending = Some(hs);
                if let Some(hs) = self.pending.take() {
                    if let Ok(ch) = hs.complete(&msg, Some(&self.peer_key)) {
                        self.channel = Some(ch);
                    }
                }
            }
            2 => {
                let Ok(rec) = Record::decode(&mut d) else {
                    return;
                };
                if let Some(ch) = self.channel.as_mut() {
                    match ch.open(&rec) {
                        Ok(pt) => self
                            .accepted
                            .lock()
                            .unwrap()
                            .push(String::from_utf8_lossy(&pt).into_owned()),
                        Err(_) => *self.rejected.lock().unwrap() += 1,
                    }
                }
            }
            _ => {}
        }
    }
}

/// The attacker: replays every sniffed record and injects a bit-flipped
/// forgery of each.
struct Tap {
    victim: Endpoint,
    attacks: Arc<Mutex<u32>>,
}

impl Actor for Tap {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Packet { payload, .. } = event {
            if payload.first() == Some(&2) {
                // Replay, delayed so the original arrives first.
                *self.attacks.lock().unwrap() += 2;
                ctx.send(self.victim, payload.clone());
                let mut forged = payload.to_vec();
                let n = forged.len();
                forged[n - 1] ^= 0xFF;
                ctx.send(self.victim, Bytes::from(forged));
            }
        }
    }
}

#[test]
fn hijack_attempts_on_the_wire_are_detected() {
    let mut rng = Xoshiro256::seed_from_u64(7);
    let id_a = KeyPair::generate_default(&mut rng);
    let id_b = KeyPair::generate_default(&mut rng);
    let mut topo = Topology::new();
    let net = topo.add_network("hubbed-lan", Medium::ethernet10(), true);
    let ha = topo.add_host(HostCfg::named("a"));
    let hb = topo.add_host(HostCfg::named("b"));
    let hm = topo.add_host(HostCfg::named("mallory"));
    for h in [ha, hb, hm] {
        topo.attach(h, net);
    }
    let mut world = World::new(topo, 3);
    let accepted = Arc::new(Mutex::new(Vec::new()));
    let rejected = Arc::new(Mutex::new(0u32));
    let attacks = Arc::new(Mutex::new(0u32));
    let b_ep = Endpoint::new(hb, 40);
    world.spawn(
        ha,
        40,
        Box::new(Sender {
            identity: id_a.clone(),
            peer_key: id_b.public.clone(),
            peer: b_ep,
            tap: Endpoint::new(hm, 40),
            pending: None,
            to_send: vec!["resource grant #1", "resource grant #2", "resource grant #3"],
        }),
    );
    world.spawn(
        hb,
        40,
        Box::new(Receiver {
            identity: id_b,
            peer_key: id_a.public.clone(),
            channel: None,
            pending: None,
            accepted: accepted.clone(),
            rejected: rejected.clone(),
        }),
    );
    world.spawn(hm, 40, Box::new(Tap { victim: b_ep, attacks: attacks.clone() }));
    world.run_for(SimDuration::from_secs(2));

    assert_eq!(
        &*accepted.lock().unwrap(),
        &vec![
            "resource grant #1".to_string(),
            "resource grant #2".to_string(),
            "resource grant #3".to_string()
        ],
        "legitimate traffic flows"
    );
    assert!(*attacks.lock().unwrap() >= 6, "the tap attacked");
    assert_eq!(
        *rejected.lock().unwrap(),
        *attacks.lock().unwrap(),
        "every replay and forgery must be rejected"
    );
}

#[test]
fn attacker_without_identity_cannot_complete_handshake() {
    // Mallory intercepts the handshake and answers with her own share,
    // signed by her own key: A must refuse.
    let mut rng = Xoshiro256::seed_from_u64(8);
    let id_a = KeyPair::generate_default(&mut rng);
    let id_b = KeyPair::generate_default(&mut rng);
    let id_m = KeyPair::generate_default(&mut rng);
    let a = Handshake::start(&mut rng, Role::Initiator, Some(&id_a));
    let mallory = Handshake::start(&mut rng, Role::Responder, Some(&id_m));
    let msg = mallory.message().clone();
    let err = a.complete(&msg, Some(&id_b.public)).unwrap_err();
    assert_eq!(err.kind(), "auth-failed");
}
