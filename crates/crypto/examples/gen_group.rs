//! One-off generator for the embedded default Schnorr group constants.
fn main() {
    let g = snipe_crypto::group::SchnorrGroup::generate(384, 160, 0x534e495045);
    println!("P={}", g.p.to_hex());
    println!("Q={}", g.q.to_hex());
    println!("G={}", g.g.to_hex());
}
