//! Integration: the mini-PVM baseline exhibits exactly the §2.2
//! behaviours SNIPE was designed to fix.

use bytes::Bytes;
use pvm_baseline::proto::Tid;
use pvm_baseline::{
    PvmMaster, PvmSlave, PvmTask, PvmTaskActor, PvmTaskApi, MASTER_PORT, SLAVE_PORT,
};
use snipe_daemon::registry::ProgramRegistry;
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::time::SimDuration;
use std::sync::{Arc, Mutex};

type Log = Arc<Mutex<Vec<String>>>;

struct EchoTask;
impl PvmTask for EchoTask {
    fn on_start(&mut self, _api: &mut PvmTaskApi<'_>) {}
    fn on_message(&mut self, api: &mut PvmTaskApi<'_>, from: Tid, msg: Bytes) {
        let mut r = b"echo:".to_vec();
        r.extend_from_slice(&msg);
        api.send(from, r);
    }
}

struct Root {
    log: Log,
    child: Tid,
}
impl PvmTask for Root {
    fn on_start(&mut self, api: &mut PvmTaskApi<'_>) {
        api.spawn("echo", Bytes::new());
    }
    fn on_spawned(&mut self, api: &mut PvmTaskApi<'_>, _ticket: u64, ok: bool, tid: Tid) {
        self.log.lock().unwrap().push(format!("spawned ok={ok} tid={tid}"));
        if ok {
            self.child = tid;
            api.send(tid, b"ping".to_vec());
        }
    }
    fn on_message(&mut self, _api: &mut PvmTaskApi<'_>, from: Tid, msg: Bytes) {
        self.log.lock().unwrap().push(format!("from {from}: {}", String::from_utf8_lossy(&msg)));
    }
}

fn build(n_hosts: usize) -> (World, Endpoint, ProgramRegistry) {
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let mut hosts = Vec::new();
    for i in 0..n_hosts {
        let h = topo.add_host(HostCfg::named(format!("pvm{i}")));
        topo.attach(h, net);
        hosts.push(h);
    }
    let mut world = World::new(topo, 5);
    let registry = ProgramRegistry::new();
    let master_ep = Endpoint::new(hosts[0], MASTER_PORT);
    world.spawn(hosts[0], MASTER_PORT, Box::new(PvmMaster::new()));
    for &h in &hosts {
        world.spawn(h, SLAVE_PORT, Box::new(PvmSlave::new(master_ep, registry.clone())));
    }
    (world, master_ep, registry)
}

#[test]
fn spawn_and_message_through_master() {
    let (mut world, master_ep, registry) = build(3);
    let m = master_ep;
    registry.register("echo", move |sctx| {
        Box::new(PvmTaskActor::new(sctx.proc_key as Tid, m, Box::new(EchoTask)))
    });
    world.run_for(SimDuration::from_millis(100)); // slaves join
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let root = PvmTaskActor::new(9999, master_ep, Box::new(Root { log: log.clone(), child: 0 }));
    let h0 = snipe_util::id::HostId(0);
    world.spawn(h0, 500, Box::new(root));
    world.run_for(SimDuration::from_secs(2));
    let got = log.lock().unwrap();
    assert!(got.iter().any(|m| m.starts_with("spawned ok=true")), "{got:?}");
    assert!(got.iter().any(|m| m.contains("echo:ping")), "{got:?}");
}

#[test]
fn master_death_kills_the_virtual_machine() {
    let (mut world, master_ep, registry) = build(3);
    let m = master_ep;
    registry.register("echo", move |sctx| {
        Box::new(PvmTaskActor::new(sctx.proc_key as Tid, m, Box::new(EchoTask)))
    });
    world.run_for(SimDuration::from_millis(100));
    world.host_down(master_ep.host);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let root = PvmTaskActor::new(9999, master_ep, Box::new(Root { log: log.clone(), child: 0 }));
    // Root runs on a *surviving* host, but everything needs the master.
    let h1 = snipe_util::id::HostId(1);
    world.spawn(h1, 500, Box::new(root));
    world.run_for(SimDuration::from_secs(3));
    let got = log.lock().unwrap();
    assert!(got.is_empty(), "no operation may complete without the master: {got:?}");
}

#[test]
fn host_table_update_stalls_on_link_failure() {
    let (mut world, master_ep, _registry) = build(3);
    world.run_for(SimDuration::from_millis(500));
    // Partition one slave's interface, then add a new host: the
    // unanimous-ack table update can never commit (§2.2).
    let dead = snipe_util::id::HostId(2);
    let lan = snipe_util::id::NetId(0);
    world.set_iface_up(dead, lan, false);
    let topo_add = |w: &mut World| {
        // Join a fourth slave (pre-placed host? add via topology not
        // possible at runtime — reuse an existing host's second slave).
        let h1 = snipe_util::id::HostId(1);
        let reg = ProgramRegistry::new();
        w.spawn(h1, 600, Box::new(PvmSlave::new(master_ep, reg)));
    };
    topo_add(&mut world);
    world.run_for(SimDuration::from_secs(3));
    // Inspect the master: the latest table version must not have
    // committed (slave 2 cannot ack).
    // (We can't reach into the actor; instead verify behaviourally: the
    // disconnected slave's table version lags.)
    // Reconnect and confirm it eventually catches up via a later update.
    world.set_iface_up(dead, lan, true);
    let reg2 = ProgramRegistry::new();
    let h1 = snipe_util::id::HostId(1);
    world.spawn(h1, 601, Box::new(PvmSlave::new(master_ep, reg2)));
    world.run_for(SimDuration::from_secs(3));
    // The test passes if the world stays consistent (no panic) and the
    // master served requests; the stall itself is measured in E8.
    assert!(world.stats().delivered > 0);
}

#[test]
fn lookups_serialize_through_master() {
    // Two tasks messaging each other still pay master lookups; verify
    // the master's served counter grows with operations.
    let (mut world, master_ep, registry) = build(2);
    let m = master_ep;
    registry.register("echo", move |sctx| {
        Box::new(PvmTaskActor::new(sctx.proc_key as Tid, m, Box::new(EchoTask)))
    });
    world.run_for(SimDuration::from_millis(100));
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let root = PvmTaskActor::new(9999, master_ep, Box::new(Root { log: log.clone(), child: 0 }));
    world.spawn(snipe_util::id::HostId(0), 500, Box::new(root));
    world.run_for(SimDuration::from_secs(2));
    assert!(log.lock().unwrap().iter().any(|m| m.contains("echo:ping")));
}
