//! # pvm-baseline — a miniature PVM for comparison experiments
//!
//! The paper motivates SNIPE by PVM's limits (§2.2):
//!
//! * "PVM allows practical scalability to tens of hosts ... limitations
//!   in PVM's resource management and internal state management tend to
//!   make such configurations unreliable and inefficient."
//! * "PVM can tolerate slave failures but not failure of its master
//!   host. It also cannot tolerate link failures during host table
//!   updates."
//! * "The PVM resource manager uses centralized decision making. This
//!   would be a bottleneck for a very large virtual machine."
//! * "PVM lacks a global name space. Process names are valid only
//!   within a single 'virtual machine.'"
//!
//! This crate reproduces those *behaviours* as a measurable baseline:
//! a master `pvmd` that serializes every naming, spawn and host-table
//! operation (with realistic per-request service time that grows with
//! the host table), slave daemons that depend on the master, and tasks
//! whose names are master-issued TIDs. Experiments E4 and E8 run the
//! same workloads against this and against SNIPE.

pub mod proto;
pub mod pvmd;
pub mod task;

pub use proto::{PvmMsg, Tid};
pub use pvmd::{PvmMaster, PvmSlave, MASTER_PORT, SLAVE_PORT};
pub use task::{PvmTask, PvmTaskActor, PvmTaskApi};
