//! The PVM daemons: one master, many slaves.
//!
//! The master serializes *every* operation through a single service
//! queue whose per-request cost grows with the host table — that is
//! the §2.2 bottleneck made measurable. Host-table updates broadcast to
//! all slaves and only commit on unanimous acknowledgement, so a link
//! failure mid-update wedges the add-host operation (also §2.2). If the
//! master host dies, the whole virtual machine is dead: slaves refuse
//! everything.

use std::collections::HashMap;

use bytes::Bytes;

use snipe_netsim::actor::{Event, PortableActor, SimCtx};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{open, seal, Proto};

use snipe_daemon::registry::{ProgramRegistry, SpawnCtx};

use crate::proto::{PvmMsg, Tid};

/// Master pvmd port.
pub const MASTER_PORT: u16 = 10;
/// Slave pvmd port.
pub const SLAVE_PORT: u16 = 11;

/// Base master service time per request.
pub const SERVICE_BASE: SimDuration = SimDuration::from_micros(150);
/// Additional master service time per host in the table.
pub const SERVICE_PER_HOST: SimDuration = SimDuration::from_micros(15);

const TIMER_FLUSH: u64 = 1;

/// The master pvmd: host table owner, central name service and
/// resource manager.
pub struct PvmMaster {
    slaves: Vec<Endpoint>,
    table_version: u32,
    /// Outstanding host-table acks per version (unanimity required).
    pending_acks: HashMap<u32, Vec<Endpoint>>,
    tasks: HashMap<Tid, Endpoint>,
    next_tid: Tid,
    next_spawn_slave: usize,
    /// When the master's single service queue is next free.
    busy_until: SimTime,
    /// Replies waiting for their service turn, ordered by release time.
    deferred: Vec<(SimTime, Endpoint, Bytes)>,
    /// Requests served (diagnostics).
    pub served: u64,
    /// Committed host-table versions (diagnostics; stalls visible).
    pub committed_version: u32,
}

impl PvmMaster {
    /// Fresh master with no slaves.
    pub fn new() -> PvmMaster {
        PvmMaster {
            slaves: Vec::new(),
            table_version: 0,
            pending_acks: HashMap::new(),
            tasks: HashMap::new(),
            next_tid: 1,
            next_spawn_slave: 0,
            busy_until: SimTime::ZERO,
            deferred: Vec::new(),
            served: 0,
            committed_version: 0,
        }
    }

    /// Registered host count.
    pub fn host_count(&self) -> usize {
        self.slaves.len()
    }

    /// Reserve the master's next service slot and queue `msg` for
    /// release when the slot completes.
    fn reply_after_service(&mut self, ctx: &mut dyn SimCtx, to: Endpoint, msg: &PvmMsg) {
        let now = ctx.now();
        let per_req = SERVICE_BASE + SERVICE_PER_HOST * self.slaves.len() as u64;
        let start = if self.busy_until > now { self.busy_until } else { now };
        let finish = start + per_req;
        self.busy_until = finish;
        self.served += 1;
        self.deferred.push((finish, to, seal(Proto::Raw, msg.encode_to_bytes())));
        ctx.set_timer(finish.saturating_since(now), TIMER_FLUSH);
    }

    fn flush_deferred(&mut self, ctx: &mut dyn SimCtx) {
        let now = ctx.now();
        let mut rest = Vec::new();
        for (at, to, bytes) in std::mem::take(&mut self.deferred) {
            if at <= now {
                ctx.send(to, bytes);
            } else {
                rest.push((at, to, bytes));
            }
        }
        self.deferred = rest;
    }
}

impl Default for PvmMaster {
    fn default() -> Self {
        Self::new()
    }
}

impl PortableActor for PvmMaster {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Timer { token: TIMER_FLUSH } => self.flush_deferred(ctx),
            Event::Packet { from, payload } => {
                let Ok((Proto::Raw, body)) = open(payload) else {
                    return;
                };
                let Ok(msg) = PvmMsg::decode_from_bytes(body) else {
                    return;
                };
                match msg {
                    PvmMsg::AddHost { slave } => {
                        if !self.slaves.contains(&slave) {
                            self.slaves.push(slave);
                        }
                        // Host table update protocol: broadcast, commit
                        // only on unanimous acks (§2.2 fragility).
                        self.table_version += 1;
                        let v = self.table_version;
                        self.pending_acks.insert(v, self.slaves.clone());
                        let table = PvmMsg::HostTable { version: v, slaves: self.slaves.clone() };
                        let targets = self.slaves.clone();
                        for s in targets {
                            self.reply_after_service(ctx, s, &table);
                        }
                    }
                    PvmMsg::HostTableAck { version, slave } => {
                        if let Some(waiting) = self.pending_acks.get_mut(&version) {
                            waiting.retain(|s| *s != slave);
                            if waiting.is_empty() {
                                self.pending_acks.remove(&version);
                                if version > self.committed_version {
                                    self.committed_version = version;
                                }
                            }
                        }
                    }
                    PvmMsg::SpawnReq { req_id, program, args } => {
                        if self.slaves.is_empty() {
                            let resp =
                                PvmMsg::SpawnResp { req_id, ok: false, tid: 0, endpoint: from };
                            self.reply_after_service(ctx, from, &resp);
                            return;
                        }
                        // Central RM: round-robin placement.
                        let slave = self.slaves[self.next_spawn_slave % self.slaves.len()];
                        self.next_spawn_slave += 1;
                        let tid = self.next_tid;
                        self.next_tid += 1;
                        let fwd = PvmMsg::SlaveSpawn { req_id, tid, program, args, reply_to: from };
                        self.reply_after_service(ctx, slave, &fwd);
                    }
                    PvmMsg::Register { tid, endpoint } => {
                        self.tasks.insert(tid, endpoint);
                    }
                    PvmMsg::LookupReq { req_id, tid } => {
                        let resp = match self.tasks.get(&tid) {
                            Some(&ep) => PvmMsg::LookupResp { req_id, ok: true, endpoint: ep },
                            None => PvmMsg::LookupResp {
                                req_id,
                                ok: false,
                                endpoint: Endpoint::new(ctx.host(), 0),
                            },
                        };
                        self.reply_after_service(ctx, from, &resp);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

/// A slave pvmd: spawns tasks on the master's order and dies with the
/// master (every operation needs the master; if it is unreachable the
/// VM is unusable).
pub struct PvmSlave {
    master: Endpoint,
    registry: ProgramRegistry,
    table_version: u32,
    next_task_port: u16,
    /// Local tasks by tid.
    local_tasks: HashMap<Tid, Endpoint>,
    /// Remote tid → endpoint cache (learned from master lookups).
    route_cache: HashMap<Tid, Endpoint>,
    /// Routed packets waiting on a master lookup.
    route_waiting: HashMap<Tid, Vec<(Tid, Bytes)>>,
    /// Outstanding route lookups: req id → dest tid.
    route_lookups: HashMap<u64, Tid>,
    next_req: u64,
    /// Tasks started (diagnostics).
    pub started: u64,
    /// Packets relayed for tasks (diagnostics).
    pub relayed: u64,
}

impl PvmSlave {
    /// A slave that joins `master` on start.
    pub fn new(master: Endpoint, registry: ProgramRegistry) -> PvmSlave {
        PvmSlave {
            master,
            registry,
            table_version: 0,
            next_task_port: 200,
            local_tasks: HashMap::new(),
            route_cache: HashMap::new(),
            route_waiting: HashMap::new(),
            route_lookups: HashMap::new(),
            next_req: 1 << 32,
            started: 0,
            relayed: 0,
        }
    }

    /// Forward a routed packet toward its destination: directly to a
    /// local task, or to the destination host's pvmd.
    fn route(&mut self, ctx: &mut dyn SimCtx, dest: Tid, from: Tid, payload: Bytes) {
        self.relayed += 1;
        if let Some(&ep) = self.local_tasks.get(&dest) {
            let msg = PvmMsg::Data { from, payload };
            ctx.send(ep, seal(Proto::Raw, msg.encode_to_bytes()));
            return;
        }
        if let Some(&ep) = self.route_cache.get(&dest) {
            if ep.host == ctx.host() {
                // Destination lives on this host (it may have enrolled
                // directly rather than through us): final delivery.
                let msg = PvmMsg::Data { from, payload };
                ctx.send(ep, seal(Proto::Raw, msg.encode_to_bytes()));
            } else {
                let fwd = PvmMsg::RouteData { dest, from, payload };
                ctx.send(
                    Endpoint::new(ep.host, SLAVE_PORT),
                    seal(Proto::Raw, fwd.encode_to_bytes()),
                );
            }
            return;
        }
        // Ask the master where the tid lives.
        let first = !self.route_waiting.contains_key(&dest);
        self.route_waiting.entry(dest).or_default().push((from, payload));
        if first {
            let req = self.next_req;
            self.next_req += 1;
            self.route_lookups.insert(req, dest);
            let msg = PvmMsg::LookupReq { req_id: req, tid: dest };
            ctx.send(self.master, seal(Proto::Raw, msg.encode_to_bytes()));
        }
    }

    /// Last host-table version this slave acked.
    pub fn table_version(&self) -> u32 {
        self.table_version
    }
}

impl PortableActor for PvmSlave {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                let msg = PvmMsg::AddHost { slave: me };
                ctx.send(self.master, seal(Proto::Raw, msg.encode_to_bytes()));
            }
            Event::Packet { from: _, payload } => {
                let Ok((Proto::Raw, body)) = open(payload) else {
                    return;
                };
                let Ok(msg) = PvmMsg::decode_from_bytes(body) else {
                    return;
                };
                match msg {
                    PvmMsg::HostTable { version, .. } => {
                        self.table_version = version;
                        let me = ctx.me();
                        let ack = PvmMsg::HostTableAck { version, slave: me };
                        ctx.send(self.master, seal(Proto::Raw, ack.encode_to_bytes()));
                    }
                    PvmMsg::RouteData { dest, from, payload } => {
                        self.route(ctx, dest, from, payload);
                    }
                    PvmMsg::LookupResp { req_id, ok, endpoint } => {
                        if let Some(dest) = self.route_lookups.remove(&req_id) {
                            if ok {
                                self.route_cache.insert(dest, endpoint);
                                for (from, payload) in
                                    self.route_waiting.remove(&dest).unwrap_or_default()
                                {
                                    self.route(ctx, dest, from, payload);
                                }
                            } else {
                                // Drop; senders retry at task level.
                                self.route_waiting.remove(&dest);
                            }
                        }
                    }
                    PvmMsg::SlaveSpawn { req_id, tid, program, args, reply_to } => {
                        let sctx = SpawnCtx { args, proc_key: tid as u64 };
                        let Some(Ok(actor)) = self.registry.instantiate(&program, &sctx) else {
                            let resp =
                                PvmMsg::SpawnResp { req_id, ok: false, tid, endpoint: ctx.me() };
                            ctx.send(reply_to, seal(Proto::Raw, resp.encode_to_bytes()));
                            return;
                        };
                        let mut port = self.next_task_port;
                        while ctx.is_bound(Endpoint::new(ctx.host(), port)) {
                            port = port.wrapping_add(1).max(200);
                        }
                        self.next_task_port = port.wrapping_add(1).max(200);
                        let ep = ctx.spawn_portable(ctx.host(), port, actor).expect("port free");
                        self.started += 1;
                        self.local_tasks.insert(tid, ep);
                        // Register the task centrally, then answer.
                        let reg = PvmMsg::Register { tid, endpoint: ep };
                        ctx.send(self.master, seal(Proto::Raw, reg.encode_to_bytes()));
                        let resp = PvmMsg::SpawnResp { req_id, ok: true, tid, endpoint: ep };
                        ctx.send(reply_to, seal(Proto::Raw, resp.encode_to_bytes()));
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

portable_actor!(PvmMaster);
portable_actor!(PvmSlave);
