//! PVM tasks: the application model of the baseline.
//!
//! A [`PvmTask`] is the PVM analogue of `snipe_core::SnipeProcess`:
//! it can spawn via the central master, look up tids (every lookup is
//! a master round-trip) and exchange direct messages once resolved.

use std::collections::HashMap;

use bytes::Bytes;

use snipe_netsim::actor::{Event, PortableActor, SimCtx};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{open, seal, Proto};

use crate::proto::{PvmMsg, Tid};

/// Commands a task can issue during a callback.
enum Cmd {
    Spawn { ticket: u64, program: String, args: Bytes },
    Send { to: Tid, payload: Bytes },
    SetTimer { delay: SimDuration, token: u64 },
}

/// The PVM task API handed to callbacks.
pub struct PvmTaskApi<'a> {
    now: SimTime,
    my_tid: Tid,
    cmds: &'a mut Vec<Cmd>,
    next_ticket: &'a mut u64,
}

impl PvmTaskApi<'_> {
    /// Current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This task's tid.
    pub fn my_tid(&self) -> Tid {
        self.my_tid
    }

    /// Spawn a program via the central master; ticketed.
    pub fn spawn(&mut self, program: impl Into<String>, args: impl Into<Bytes>) -> u64 {
        let t = *self.next_ticket;
        *self.next_ticket += 1;
        self.cmds.push(Cmd::Spawn { ticket: t, program: program.into(), args: args.into() });
        t
    }

    /// Send to another task by tid (resolved through the master on
    /// first use).
    pub fn send(&mut self, to: Tid, payload: impl Into<Bytes>) {
        self.cmds.push(Cmd::Send { to, payload: payload.into() });
    }

    /// Arm a timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.cmds.push(Cmd::SetTimer { delay, token });
    }
}

/// The trait a PVM application implements.
pub trait PvmTask: Send {
    /// Task started (tid assigned).
    fn on_start(&mut self, api: &mut PvmTaskApi<'_>);
    /// Data from another task.
    fn on_message(&mut self, api: &mut PvmTaskApi<'_>, from: Tid, msg: Bytes) {
        let _ = (api, from, msg);
    }
    /// Spawn completed.
    fn on_spawned(&mut self, api: &mut PvmTaskApi<'_>, ticket: u64, ok: bool, tid: Tid) {
        let _ = (api, ticket, ok, tid);
    }
    /// Timer fired.
    fn on_timer(&mut self, api: &mut PvmTaskApi<'_>, token: u64) {
        let _ = (api, token);
    }
}

const APP_TIMER_BIT: u64 = 0x8;

/// The actor wrapping a [`PvmTask`].
pub struct PvmTaskActor {
    tid: Tid,
    master: Endpoint,
    /// Route data through the pvmds (the PVM default that PVMPI used)
    /// instead of direct endpoints.
    route_via_daemon: bool,
    task: Box<dyn PvmTask>,
    cmds: Vec<Cmd>,
    next_ticket: u64,
    next_req: u64,
    /// tid → endpoint cache (filled by master lookups).
    peers: HashMap<Tid, Endpoint>,
    /// Messages waiting on a lookup.
    waiting: HashMap<Tid, Vec<Bytes>>,
    /// lookup req id → tid.
    lookups: HashMap<u64, Tid>,
    /// spawn req id → ticket.
    spawns: HashMap<u64, u64>,
}

impl PvmTaskActor {
    /// Wrap a task.
    pub fn new(tid: Tid, master: Endpoint, task: Box<dyn PvmTask>) -> PvmTaskActor {
        PvmTaskActor {
            tid,
            master,
            route_via_daemon: false,
            task,
            cmds: Vec::new(),
            next_ticket: 1,
            next_req: 1,
            peers: HashMap::new(),
            waiting: HashMap::new(),
            lookups: HashMap::new(),
            spawns: HashMap::new(),
        }
    }

    /// Switch to daemon routing (PvmRoute default, used by PVMPI §6.1).
    pub fn with_daemon_routing(mut self) -> PvmTaskActor {
        self.route_via_daemon = true;
        self
    }

    fn with_task(
        &mut self,
        ctx: &mut dyn SimCtx,
        f: impl FnOnce(&mut dyn PvmTask, &mut PvmTaskApi<'_>),
    ) {
        let now = ctx.now();
        let Self { task, cmds, next_ticket, tid, .. } = self;
        let mut api = PvmTaskApi { now, my_tid: *tid, cmds, next_ticket };
        f(task.as_mut(), &mut api);
    }

    fn run_cmds(&mut self, ctx: &mut dyn SimCtx) {
        for _ in 0..16 {
            if self.cmds.is_empty() {
                return;
            }
            for cmd in std::mem::take(&mut self.cmds) {
                match cmd {
                    Cmd::SetTimer { delay, token } => {
                        ctx.set_timer(delay, (token << 4) | APP_TIMER_BIT)
                    }
                    Cmd::Spawn { ticket, program, args } => {
                        let req = self.next_req;
                        self.next_req += 1;
                        self.spawns.insert(req, ticket);
                        let msg = PvmMsg::SpawnReq { req_id: req, program, args };
                        ctx.send(self.master, seal(Proto::Raw, msg.encode_to_bytes()));
                    }
                    Cmd::Send { to, payload } if self.route_via_daemon => {
                        // Task → local pvmd → (remote pvmd) → task.
                        let slave = Endpoint::new(ctx.host(), crate::pvmd::SLAVE_PORT);
                        let msg = PvmMsg::RouteData { dest: to, from: self.tid, payload };
                        ctx.send(slave, seal(Proto::Raw, msg.encode_to_bytes()));
                    }
                    Cmd::Send { to, payload } => match self.peers.get(&to) {
                        Some(&ep) => {
                            let msg = PvmMsg::Data { from: self.tid, payload };
                            ctx.send(ep, seal(Proto::Raw, msg.encode_to_bytes()));
                        }
                        None => {
                            let first = !self.waiting.contains_key(&to);
                            self.waiting.entry(to).or_default().push(payload);
                            if first {
                                let req = self.next_req;
                                self.next_req += 1;
                                self.lookups.insert(req, to);
                                let msg = PvmMsg::LookupReq { req_id: req, tid: to };
                                ctx.send(self.master, seal(Proto::Raw, msg.encode_to_bytes()));
                            }
                        }
                    },
                }
            }
        }
    }
}

impl PortableActor for PvmTaskActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start => {
                // Register our own tid with the master so peers can
                // resolve us (pvmds did this for their children; a
                // directly-launched console task does it itself).
                let me = ctx.me();
                let reg = PvmMsg::Register { tid: self.tid, endpoint: me };
                ctx.send(self.master, seal(Proto::Raw, reg.encode_to_bytes()));
                self.with_task(ctx, |t, api| t.on_start(api));
                self.run_cmds(ctx);
            }
            Event::Timer { token } if token & APP_TIMER_BIT != 0 => {
                let app = token >> 4;
                self.with_task(ctx, |t, api| t.on_timer(api, app));
                self.run_cmds(ctx);
            }
            Event::Timer { .. } => {}
            Event::Packet { from: _, payload } => {
                let Ok((Proto::Raw, body)) = open(payload) else {
                    return;
                };
                let Ok(msg) = PvmMsg::decode_from_bytes(body) else {
                    return;
                };
                match msg {
                    PvmMsg::Data { from, payload } => {
                        self.with_task(ctx, |t, api| t.on_message(api, from, payload));
                        self.run_cmds(ctx);
                    }
                    PvmMsg::LookupResp { req_id, ok, endpoint } => {
                        if let Some(tid) = self.lookups.remove(&req_id) {
                            if ok {
                                self.peers.insert(tid, endpoint);
                                for payload in self.waiting.remove(&tid).unwrap_or_default() {
                                    let msg = PvmMsg::Data { from: self.tid, payload };
                                    ctx.send(endpoint, seal(Proto::Raw, msg.encode_to_bytes()));
                                }
                            } else {
                                // Retry shortly: the peer may still be
                                // registering with the master.
                                let req = self.next_req;
                                self.next_req += 1;
                                self.lookups.insert(req, tid);
                                let m = self.master;
                                let msg = PvmMsg::LookupReq { req_id: req, tid };
                                ctx.set_timer(SimDuration::from_millis(20), 0);
                                ctx.send(m, seal(Proto::Raw, msg.encode_to_bytes()));
                            }
                        }
                    }
                    PvmMsg::SpawnResp { req_id, ok, tid, endpoint } => {
                        if let Some(ticket) = self.spawns.remove(&req_id) {
                            if ok {
                                self.peers.insert(tid, endpoint);
                            }
                            self.with_task(ctx, |t, api| t.on_spawned(api, ticket, ok, tid));
                            self.run_cmds(ctx);
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

portable_actor!(PvmTaskActor);
