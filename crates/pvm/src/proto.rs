//! PVM wire messages.

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::id::HostId;

/// A PVM task identifier: valid only inside one virtual machine (the
/// paper's point about the missing global name space).
pub type Tid = u32;

const MAGIC: u8 = 0xB0;

fn put_ep(enc: &mut Encoder, ep: Endpoint) {
    enc.put_u32(ep.host.0);
    enc.put_u16(ep.port);
}

fn get_ep(dec: &mut Decoder) -> SnipeResult<Endpoint> {
    Ok(Endpoint::new(HostId(dec.get_u32()?), dec.get_u16()?))
}

/// PVM control and data messages.
#[derive(Clone, Debug, PartialEq)]
pub enum PvmMsg {
    /// Slave asks to join the VM (pvm_addhosts).
    AddHost {
        /// The slave daemon's endpoint.
        slave: Endpoint,
    },
    /// Master broadcasts the new host table; every slave must ack
    /// before the update commits.
    HostTable {
        /// Table version.
        version: u32,
        /// All slave endpoints.
        slaves: Vec<Endpoint>,
    },
    /// Slave acks a host table version.
    HostTableAck {
        /// Acked version.
        version: u32,
        /// The acking slave.
        slave: Endpoint,
    },
    /// Client asks the master to spawn (central RM decides placement).
    SpawnReq {
        /// Request id.
        req_id: u64,
        /// Program name.
        program: String,
        /// Args.
        args: Bytes,
    },
    /// Master → chosen slave: start the task.
    SlaveSpawn {
        /// Request id (flows through).
        req_id: u64,
        /// Assigned tid.
        tid: Tid,
        /// Program.
        program: String,
        /// Args.
        args: Bytes,
        /// Who asked (for the final reply).
        reply_to: Endpoint,
    },
    /// Slave → requester (via master bookkeeping): task started.
    SpawnResp {
        /// Request id.
        req_id: u64,
        /// Success?
        ok: bool,
        /// The new task's tid.
        tid: Tid,
        /// The new task's endpoint.
        endpoint: Endpoint,
    },
    /// Resolve a tid to an endpoint (every lookup hits the master).
    LookupReq {
        /// Request id.
        req_id: u64,
        /// The tid.
        tid: Tid,
    },
    /// Lookup answer.
    LookupResp {
        /// Request id.
        req_id: u64,
        /// Found?
        ok: bool,
        /// Endpoint when found.
        endpoint: Endpoint,
    },
    /// Task registers itself after starting.
    Register {
        /// Its tid.
        tid: Tid,
        /// Its endpoint.
        endpoint: Endpoint,
    },
    /// Task-to-task data (direct route once resolved).
    Data {
        /// Sender tid.
        from: Tid,
        /// Payload.
        payload: Bytes,
    },
    /// Daemon-routed task data (the PVM default route: task → local
    /// pvmd → remote pvmd → task, which PVMPI inherited, §6.1).
    RouteData {
        /// Destination tid.
        dest: Tid,
        /// Sender tid.
        from: Tid,
        /// Payload.
        payload: Bytes,
    },
}

impl WireEncode for PvmMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MAGIC);
        match self {
            PvmMsg::AddHost { slave } => {
                enc.put_u8(1);
                put_ep(enc, *slave);
            }
            PvmMsg::HostTable { version, slaves } => {
                enc.put_u8(2);
                enc.put_u32(*version);
                enc.put_u32(slaves.len() as u32);
                for s in slaves {
                    put_ep(enc, *s);
                }
            }
            PvmMsg::HostTableAck { version, slave } => {
                enc.put_u8(3);
                enc.put_u32(*version);
                put_ep(enc, *slave);
            }
            PvmMsg::SpawnReq { req_id, program, args } => {
                enc.put_u8(4);
                enc.put_u64(*req_id);
                enc.put_str(program);
                enc.put_bytes(args);
            }
            PvmMsg::SlaveSpawn { req_id, tid, program, args, reply_to } => {
                enc.put_u8(5);
                enc.put_u64(*req_id);
                enc.put_u32(*tid);
                enc.put_str(program);
                enc.put_bytes(args);
                put_ep(enc, *reply_to);
            }
            PvmMsg::SpawnResp { req_id, ok, tid, endpoint } => {
                enc.put_u8(6);
                enc.put_u64(*req_id);
                enc.put_bool(*ok);
                enc.put_u32(*tid);
                put_ep(enc, *endpoint);
            }
            PvmMsg::LookupReq { req_id, tid } => {
                enc.put_u8(7);
                enc.put_u64(*req_id);
                enc.put_u32(*tid);
            }
            PvmMsg::LookupResp { req_id, ok, endpoint } => {
                enc.put_u8(8);
                enc.put_u64(*req_id);
                enc.put_bool(*ok);
                put_ep(enc, *endpoint);
            }
            PvmMsg::Register { tid, endpoint } => {
                enc.put_u8(9);
                enc.put_u32(*tid);
                put_ep(enc, *endpoint);
            }
            PvmMsg::Data { from, payload } => {
                enc.put_u8(10);
                enc.put_u32(*from);
                enc.put_bytes(payload);
            }
            PvmMsg::RouteData { dest, from, payload } => {
                enc.put_u8(11);
                enc.put_u32(*dest);
                enc.put_u32(*from);
                enc.put_bytes(payload);
            }
        }
    }
}

impl WireDecode for PvmMsg {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        if dec.get_u8()? != MAGIC {
            return Err(SnipeError::Codec("not a PVM message".into()));
        }
        Ok(match dec.get_u8()? {
            1 => PvmMsg::AddHost { slave: get_ep(dec)? },
            2 => {
                let version = dec.get_u32()?;
                let n = dec.get_u32()? as usize;
                let mut slaves = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    slaves.push(get_ep(dec)?);
                }
                PvmMsg::HostTable { version, slaves }
            }
            3 => PvmMsg::HostTableAck { version: dec.get_u32()?, slave: get_ep(dec)? },
            4 => PvmMsg::SpawnReq {
                req_id: dec.get_u64()?,
                program: dec.get_str()?,
                args: dec.get_bytes()?,
            },
            5 => PvmMsg::SlaveSpawn {
                req_id: dec.get_u64()?,
                tid: dec.get_u32()?,
                program: dec.get_str()?,
                args: dec.get_bytes()?,
                reply_to: get_ep(dec)?,
            },
            6 => PvmMsg::SpawnResp {
                req_id: dec.get_u64()?,
                ok: dec.get_bool()?,
                tid: dec.get_u32()?,
                endpoint: get_ep(dec)?,
            },
            7 => PvmMsg::LookupReq { req_id: dec.get_u64()?, tid: dec.get_u32()? },
            8 => PvmMsg::LookupResp {
                req_id: dec.get_u64()?,
                ok: dec.get_bool()?,
                endpoint: get_ep(dec)?,
            },
            9 => PvmMsg::Register { tid: dec.get_u32()?, endpoint: get_ep(dec)? },
            10 => PvmMsg::Data { from: dec.get_u32()?, payload: dec.get_bytes()? },
            11 => PvmMsg::RouteData {
                dest: dec.get_u32()?,
                from: dec.get_u32()?,
                payload: dec.get_bytes()?,
            },
            t => return Err(SnipeError::Codec(format!("unknown PVM tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_round_trip() {
        let ep = Endpoint::new(HostId(1), 11);
        let msgs = vec![
            PvmMsg::AddHost { slave: ep },
            PvmMsg::HostTable { version: 2, slaves: vec![ep, Endpoint::new(HostId(2), 11)] },
            PvmMsg::HostTableAck { version: 2, slave: ep },
            PvmMsg::SpawnReq { req_id: 1, program: "w".into(), args: Bytes::from_static(b"a") },
            PvmMsg::SlaveSpawn {
                req_id: 1,
                tid: 7,
                program: "w".into(),
                args: Bytes::new(),
                reply_to: ep,
            },
            PvmMsg::SpawnResp { req_id: 1, ok: true, tid: 7, endpoint: ep },
            PvmMsg::LookupReq { req_id: 2, tid: 7 },
            PvmMsg::LookupResp { req_id: 2, ok: false, endpoint: ep },
            PvmMsg::Register { tid: 7, endpoint: ep },
            PvmMsg::Data { from: 7, payload: Bytes::from_static(b"x") },
            PvmMsg::RouteData { dest: 8, from: 7, payload: Bytes::from_static(b"y") },
        ];
        for m in msgs {
            assert_eq!(PvmMsg::decode_from_bytes(m.encode_to_bytes()).unwrap(), m);
        }
    }
}
