//! The mobile-code format: instructions, programs and signed images.

use bytes::Bytes;

use snipe_crypto::sha256::sha256;
use snipe_crypto::sign::{KeyPair, PublicKey, Signature};
use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::rng::Xoshiro256;

/// One VM instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Push an immediate.
    PushI(i64),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two values.
    Swap,
    /// Pop b, a; push a+b.
    Add,
    /// Pop b, a; push a−b.
    Sub,
    /// Pop b, a; push a·b.
    Mul,
    /// Pop b, a; push a/b (traps on b = 0).
    Div,
    /// Pop b, a; push a mod b (traps on b = 0).
    Mod,
    /// Negate the top of stack.
    Neg,
    /// Pop b, a; push (a == b) as 0/1.
    Eq,
    /// Pop b, a; push (a < b) as 0/1.
    Lt,
    /// Pop b, a; push (a > b) as 0/1.
    Gt,
    /// Logical not of the top (0 → 1, nonzero → 0).
    Not,
    /// Push local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),
    /// Unconditional jump to instruction index.
    Jmp(u32),
    /// Pop; jump when zero.
    Jz(u32),
    /// Call a function at instruction index (pushes return address).
    Call(u32),
    /// Return to caller (traps on empty call stack).
    Ret,
    /// Stop successfully.
    Halt,
    /// Capability-gated host call; see [`crate::vm`] syscall numbers.
    Syscall(u8),
}

impl Instr {
    fn tag(self) -> u8 {
        match self {
            Instr::PushI(_) => 1,
            Instr::Pop => 2,
            Instr::Dup => 3,
            Instr::Swap => 4,
            Instr::Add => 5,
            Instr::Sub => 6,
            Instr::Mul => 7,
            Instr::Div => 8,
            Instr::Mod => 9,
            Instr::Neg => 10,
            Instr::Eq => 11,
            Instr::Lt => 12,
            Instr::Gt => 13,
            Instr::Not => 14,
            Instr::Load(_) => 15,
            Instr::Store(_) => 16,
            Instr::Jmp(_) => 17,
            Instr::Jz(_) => 18,
            Instr::Call(_) => 19,
            Instr::Ret => 20,
            Instr::Halt => 21,
            Instr::Syscall(_) => 22,
        }
    }
}

impl WireEncode for Instr {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tag());
        match self {
            Instr::PushI(v) => enc.put_i64(*v),
            Instr::Load(n) | Instr::Store(n) => enc.put_u16(*n),
            Instr::Jmp(t) | Instr::Jz(t) | Instr::Call(t) => enc.put_u32(*t),
            Instr::Syscall(n) => enc.put_u8(*n),
            _ => {}
        }
    }
}

impl WireDecode for Instr {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        Ok(match dec.get_u8()? {
            1 => Instr::PushI(dec.get_i64()?),
            2 => Instr::Pop,
            3 => Instr::Dup,
            4 => Instr::Swap,
            5 => Instr::Add,
            6 => Instr::Sub,
            7 => Instr::Mul,
            8 => Instr::Div,
            9 => Instr::Mod,
            10 => Instr::Neg,
            11 => Instr::Eq,
            12 => Instr::Lt,
            13 => Instr::Gt,
            14 => Instr::Not,
            15 => Instr::Load(dec.get_u16()?),
            16 => Instr::Store(dec.get_u16()?),
            17 => Instr::Jmp(dec.get_u32()?),
            18 => Instr::Jz(dec.get_u32()?),
            19 => Instr::Call(dec.get_u32()?),
            20 => Instr::Ret,
            21 => Instr::Halt,
            22 => Instr::Syscall(dec.get_u8()?),
            t => return Err(SnipeError::Codec(format!("unknown instruction tag {t}"))),
        })
    }
}

/// A program: instruction sequence plus static metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// The code.
    pub code: Vec<Instr>,
    /// Number of local slots used.
    pub locals: u16,
    /// Capability bits the code needs (see `vm::CAP_*`).
    pub required_caps: u32,
}

impl Program {
    /// Serialize for hashing / shipping.
    pub fn to_bytes(&self) -> Bytes {
        let mut e = Encoder::new();
        e.put_u16(self.locals);
        e.put_u32(self.required_caps);
        snipe_util::codec::encode_seq(&mut e, self.code.iter());
        e.finish()
    }

    /// Deserialize.
    pub fn from_bytes(b: Bytes) -> SnipeResult<Program> {
        let mut d = Decoder::new(b);
        let locals = d.get_u16()?;
        let required_caps = d.get_u32()?;
        let code = snipe_util::codec::decode_seq(&mut d)?;
        d.expect_end()?;
        Ok(Program { code, locals, required_caps })
    }

    /// Static verification: every jump/call target and local index is
    /// in range. Hostile images fail here before execution.
    pub fn verify_static(&self) -> SnipeResult<()> {
        let n = self.code.len() as u32;
        for (i, instr) in self.code.iter().enumerate() {
            match instr {
                Instr::Jmp(t) | Instr::Jz(t) | Instr::Call(t) if *t >= n => {
                    return Err(SnipeError::Invalid(format!(
                        "instruction {i}: jump target {t} out of range ({n})"
                    )));
                }
                Instr::Load(s) | Instr::Store(s) if *s >= self.locals => {
                    return Err(SnipeError::Invalid(format!(
                        "instruction {i}: local {s} out of range ({})",
                        self.locals
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// A signed mobile-code image: "the metadata can contain signed
/// descriptions of mobile code, allowing playgrounds to verify the
/// code's authenticity and integrity and to identify the resources and
/// access rights needed for that code to operate" (§3.1).
#[derive(Clone, Debug, PartialEq)]
pub struct CodeImage {
    /// Human-readable name.
    pub name: String,
    /// The serialized program.
    pub program: Bytes,
    /// SHA-256 of `program` (integrity).
    pub hash: [u8; 32],
    /// Signature over `name ‖ hash` by the code signer (authenticity).
    pub signature: Signature,
}

impl CodeImage {
    fn signed_bytes(name: &str, hash: &[u8; 32]) -> Bytes {
        let mut e = Encoder::new();
        e.put_str(name);
        e.put_raw(hash);
        e.finish()
    }

    /// Build and sign an image.
    pub fn sign(
        rng: &mut Xoshiro256,
        signer: &KeyPair,
        name: impl Into<String>,
        program: &Program,
    ) -> CodeImage {
        let name = name.into();
        let bytes = program.to_bytes();
        let hash = sha256(&bytes);
        let signature = signer.sign(rng, &Self::signed_bytes(&name, &hash));
        CodeImage { name, program: bytes, hash, signature }
    }

    /// Verify integrity (hash) and authenticity (signature) and decode.
    pub fn verify(&self, signer: &PublicKey) -> SnipeResult<Program> {
        if sha256(&self.program) != self.hash {
            return Err(SnipeError::AuthenticationFailed(format!(
                "code image {:?}: hash mismatch",
                self.name
            )));
        }
        if !signer.verify(&Self::signed_bytes(&self.name, &self.hash), &self.signature) {
            return Err(SnipeError::AuthenticationFailed(format!(
                "code image {:?}: bad signature",
                self.name
            )));
        }
        let p = Program::from_bytes(self.program.clone())?;
        p.verify_static()?;
        Ok(p)
    }
}

impl WireEncode for CodeImage {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_bytes(&self.program);
        enc.put_raw(&self.hash);
        self.signature.encode(enc);
    }
}

impl WireDecode for CodeImage {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        let name = dec.get_str()?;
        let program = dec.get_bytes()?;
        let raw = dec.get_raw(32)?;
        let mut hash = [0u8; 32];
        hash.copy_from_slice(&raw);
        let signature = Signature::decode(dec)?;
        Ok(CodeImage { name, program, hash, signature })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            code: vec![Instr::PushI(2), Instr::PushI(3), Instr::Add, Instr::Halt],
            locals: 0,
            required_caps: 0,
        }
    }

    #[test]
    fn instr_round_trip() {
        let all = vec![
            Instr::PushI(-7),
            Instr::Pop,
            Instr::Dup,
            Instr::Swap,
            Instr::Add,
            Instr::Sub,
            Instr::Mul,
            Instr::Div,
            Instr::Mod,
            Instr::Neg,
            Instr::Eq,
            Instr::Lt,
            Instr::Gt,
            Instr::Not,
            Instr::Load(3),
            Instr::Store(4),
            Instr::Jmp(9),
            Instr::Jz(10),
            Instr::Call(11),
            Instr::Ret,
            Instr::Halt,
            Instr::Syscall(2),
        ];
        for i in all {
            let mut e = Encoder::new();
            i.encode(&mut e);
            let mut d = Decoder::new(e.finish());
            assert_eq!(Instr::decode(&mut d).unwrap(), i);
        }
    }

    #[test]
    fn program_round_trip() {
        let p = sample();
        let back = Program::from_bytes(p.to_bytes()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn static_verification_catches_bad_targets() {
        let mut p = sample();
        p.code.push(Instr::Jmp(999));
        assert!(p.verify_static().is_err());
        let mut p2 = sample();
        p2.code.push(Instr::Load(0)); // locals = 0
        assert!(p2.verify_static().is_err());
        assert!(sample().verify_static().is_ok());
    }

    #[test]
    fn signed_image_verifies_and_detects_tamper() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let signer = KeyPair::generate_default(&mut rng);
        let img = CodeImage::sign(&mut rng, &signer, "job", &sample());
        assert!(img.verify(&signer.public).is_ok());

        // Tampered program body.
        let mut bad = img.clone();
        let mut body = bad.program.to_vec();
        body[0] ^= 1;
        bad.program = Bytes::from(body);
        assert_eq!(bad.verify(&signer.public).unwrap_err().kind(), "auth-failed");

        // Wrong signer.
        let other = KeyPair::generate_default(&mut rng);
        assert_eq!(img.verify(&other.public).unwrap_err().kind(), "auth-failed");
    }

    #[test]
    fn image_wire_round_trip() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let signer = KeyPair::generate_default(&mut rng);
        let img = CodeImage::sign(&mut rng, &signer, "job", &sample());
        let back = CodeImage::decode_from_bytes(img.encode_to_bytes()).unwrap();
        assert_eq!(back, img);
        assert!(back.verify(&signer.public).is_ok());
    }
}
