//! The playground virtual machine: quota-enforced execution with
//! checkpointable state.

use snipe_util::codec::{Decoder, Encoder};
use snipe_util::error::SnipeResult;

use crate::bytecode::{Instr, Program};

/// Capability: may emit output values.
pub const CAP_EMIT: u32 = 1 << 0;
/// Capability: may send messages to other processes.
pub const CAP_SEND: u32 = 1 << 1;
/// Capability: may read the clock.
pub const CAP_TIME: u32 = 1 << 2;
/// Capability: may write log lines.
pub const CAP_LOG: u32 = 1 << 3;

/// Syscall numbers.
pub mod sys {
    /// Pop a value and emit it as program output (CAP_EMIT).
    pub const EMIT: u8 = 1;
    /// Pop target and value; send value to target (CAP_SEND).
    pub const SEND: u8 = 2;
    /// Push the current time in milliseconds (CAP_TIME).
    pub const NOW_MS: u8 = 3;
    /// Pop a value and log it (CAP_LOG).
    pub const LOG: u8 = 4;
    /// Push the next input value, or trap if none (no capability —
    /// input is provided by the supervisor).
    pub const READ_INPUT: u8 = 5;
}

/// Resource quotas enforced by the playground (§3.6, §5.8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quotas {
    /// Maximum instructions over the program's lifetime (CPU time).
    pub fuel: u64,
    /// Maximum operand-stack depth (memory).
    pub max_stack: usize,
    /// Maximum call depth.
    pub max_calls: usize,
    /// Maximum emitted outputs.
    pub max_outputs: usize,
}

impl Default for Quotas {
    fn default() -> Self {
        Quotas { fuel: 1_000_000, max_stack: 1024, max_calls: 128, max_outputs: 4096 }
    }
}

/// Why execution stopped abnormally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// Instruction budget exhausted.
    FuelExhausted,
    /// Operand stack overflow (quota).
    StackOverflow,
    /// Operand stack underflow (malformed code).
    StackUnderflow,
    /// Call depth quota exceeded.
    CallOverflow,
    /// Return with empty call stack.
    CallUnderflow,
    /// Division or modulo by zero.
    DivideByZero,
    /// Syscall without the required capability.
    CapabilityDenied,
    /// Output quota exceeded.
    OutputQuota,
    /// READ_INPUT with no input available.
    NoInput,
    /// Unknown syscall number.
    BadSyscall,
    /// Program counter ran off the end of the code.
    PcOutOfRange,
}

/// One step / run outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// More work to do.
    Running,
    /// Halted successfully.
    Halted,
    /// Stopped by a trap (final).
    Trapped(Trap),
}

/// Host services a running program may invoke (capability-gated).
pub trait SyscallHost {
    /// Current time in milliseconds.
    fn now_ms(&mut self) -> i64;
    /// Deliver a message to another process.
    fn send(&mut self, target: i64, value: i64);
    /// Log a value.
    fn log(&mut self, value: i64);
}

/// A no-op host for pure computations and tests.
#[derive(Default)]
pub struct NullHost {
    /// Messages "sent".
    pub sent: Vec<(i64, i64)>,
    /// Values logged.
    pub logged: Vec<i64>,
    /// The time returned by `now_ms`.
    pub time_ms: i64,
}

impl SyscallHost for NullHost {
    fn now_ms(&mut self) -> i64 {
        self.time_ms
    }
    fn send(&mut self, target: i64, value: i64) {
        self.sent.push((target, value));
    }
    fn log(&mut self, value: i64) {
        self.logged.push(value);
    }
}

/// The virtual machine. All state is plain data: checkpointing is
/// [`Vm::checkpoint`] / [`Vm::restore`] through the canonical codec.
#[derive(Clone, Debug, PartialEq)]
pub struct Vm {
    code: Vec<Instr>,
    pc: u32,
    stack: Vec<i64>,
    locals: Vec<i64>,
    calls: Vec<u32>,
    /// Remaining instruction budget.
    fuel_left: u64,
    quotas: Quotas,
    caps: u32,
    /// Input queue (supervisor-provided).
    pub inputs: Vec<i64>,
    input_pos: usize,
    /// Emitted outputs.
    pub outputs: Vec<i64>,
    finished: Option<StepOutcome>,
}

impl Vm {
    /// Load a (verified) program with granted capabilities and quotas.
    pub fn new(program: &Program, caps: u32, quotas: Quotas) -> Vm {
        Vm {
            code: program.code.clone(),
            pc: 0,
            stack: Vec::new(),
            locals: vec![0; program.locals as usize],
            calls: Vec::new(),
            fuel_left: quotas.fuel,
            quotas,
            caps,
            inputs: Vec::new(),
            input_pos: 0,
            outputs: Vec::new(),
            finished: None,
        }
    }

    /// Fuel remaining.
    pub fn fuel_left(&self) -> u64 {
        self.fuel_left
    }

    /// Final outcome if the program has stopped.
    pub fn finished(&self) -> Option<StepOutcome> {
        self.finished
    }

    fn pop(&mut self) -> Result<i64, Trap> {
        self.stack.pop().ok_or(Trap::StackUnderflow)
    }

    fn push(&mut self, v: i64) -> Result<(), Trap> {
        if self.stack.len() >= self.quotas.max_stack {
            return Err(Trap::StackOverflow);
        }
        self.stack.push(v);
        Ok(())
    }

    fn binop(&mut self, f: impl Fn(i64, i64) -> Result<i64, Trap>) -> Result<(), Trap> {
        let b = self.pop()?;
        let a = self.pop()?;
        let r = f(a, b)?;
        self.push(r)
    }

    /// Execute one instruction.
    pub fn step(&mut self, host: &mut dyn SyscallHost) -> StepOutcome {
        if let Some(done) = self.finished {
            return done;
        }
        if self.fuel_left == 0 {
            return self.trap(Trap::FuelExhausted);
        }
        self.fuel_left -= 1;
        let Some(&instr) = self.code.get(self.pc as usize) else {
            return self.trap(Trap::PcOutOfRange);
        };
        self.pc += 1;
        let r: Result<(), Trap> = (|| {
            match instr {
                Instr::PushI(v) => self.push(v)?,
                Instr::Pop => {
                    self.pop()?;
                }
                Instr::Dup => {
                    let v = *self.stack.last().ok_or(Trap::StackUnderflow)?;
                    self.push(v)?;
                }
                Instr::Swap => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    self.push(b)?;
                    self.push(a)?;
                }
                Instr::Add => self.binop(|a, b| Ok(a.wrapping_add(b)))?,
                Instr::Sub => self.binop(|a, b| Ok(a.wrapping_sub(b)))?,
                Instr::Mul => self.binop(|a, b| Ok(a.wrapping_mul(b)))?,
                Instr::Div => self.binop(|a, b| {
                    if b == 0 {
                        Err(Trap::DivideByZero)
                    } else {
                        Ok(a.wrapping_div(b))
                    }
                })?,
                Instr::Mod => self.binop(|a, b| {
                    if b == 0 {
                        Err(Trap::DivideByZero)
                    } else {
                        Ok(a.wrapping_rem(b))
                    }
                })?,
                Instr::Neg => {
                    let v = self.pop()?;
                    self.push(v.wrapping_neg())?;
                }
                Instr::Eq => self.binop(|a, b| Ok((a == b) as i64))?,
                Instr::Lt => self.binop(|a, b| Ok((a < b) as i64))?,
                Instr::Gt => self.binop(|a, b| Ok((a > b) as i64))?,
                Instr::Not => {
                    let v = self.pop()?;
                    self.push((v == 0) as i64)?;
                }
                Instr::Load(s) => {
                    let v = self.locals[s as usize];
                    self.push(v)?;
                }
                Instr::Store(s) => {
                    let v = self.pop()?;
                    self.locals[s as usize] = v;
                }
                Instr::Jmp(t) => self.pc = t,
                Instr::Jz(t) => {
                    if self.pop()? == 0 {
                        self.pc = t;
                    }
                }
                Instr::Call(t) => {
                    if self.calls.len() >= self.quotas.max_calls {
                        return Err(Trap::CallOverflow);
                    }
                    self.calls.push(self.pc);
                    self.pc = t;
                }
                Instr::Ret => {
                    self.pc = self.calls.pop().ok_or(Trap::CallUnderflow)?;
                }
                Instr::Halt => {
                    self.finished = Some(StepOutcome::Halted);
                }
                Instr::Syscall(n) => match n {
                    sys::EMIT => {
                        if self.caps & CAP_EMIT == 0 {
                            return Err(Trap::CapabilityDenied);
                        }
                        if self.outputs.len() >= self.quotas.max_outputs {
                            return Err(Trap::OutputQuota);
                        }
                        let v = self.pop()?;
                        self.outputs.push(v);
                    }
                    sys::SEND => {
                        if self.caps & CAP_SEND == 0 {
                            return Err(Trap::CapabilityDenied);
                        }
                        let value = self.pop()?;
                        let target = self.pop()?;
                        host.send(target, value);
                    }
                    sys::NOW_MS => {
                        if self.caps & CAP_TIME == 0 {
                            return Err(Trap::CapabilityDenied);
                        }
                        let t = host.now_ms();
                        self.push(t)?;
                    }
                    sys::LOG => {
                        if self.caps & CAP_LOG == 0 {
                            return Err(Trap::CapabilityDenied);
                        }
                        let v = self.pop()?;
                        host.log(v);
                    }
                    sys::READ_INPUT => {
                        if self.input_pos >= self.inputs.len() {
                            return Err(Trap::NoInput);
                        }
                        let v = self.inputs[self.input_pos];
                        self.input_pos += 1;
                        self.push(v)?;
                    }
                    _ => return Err(Trap::BadSyscall),
                },
            }
            Ok(())
        })();
        match r {
            Err(t) => self.trap(t),
            Ok(()) => self.finished.unwrap_or(StepOutcome::Running),
        }
    }

    fn trap(&mut self, t: Trap) -> StepOutcome {
        let out = StepOutcome::Trapped(t);
        self.finished = Some(out);
        out
    }

    /// Run up to `slice` instructions (one fuel slice, §5.8 preemption).
    pub fn run_slice(&mut self, slice: u64, host: &mut dyn SyscallHost) -> StepOutcome {
        for _ in 0..slice {
            match self.step(host) {
                StepOutcome::Running => continue,
                done => return done,
            }
        }
        StepOutcome::Running
    }

    /// Serialize the complete machine state.
    pub fn checkpoint(&self) -> bytes::Bytes {
        let mut e = Encoder::new();
        snipe_util::codec::encode_seq(&mut e, self.code.iter());
        e.put_u32(self.pc);
        snipe_util::codec::encode_seq(&mut e, self.stack.iter());
        snipe_util::codec::encode_seq(&mut e, self.locals.iter());
        snipe_util::codec::encode_seq(&mut e, self.calls.iter());
        e.put_u64(self.fuel_left);
        e.put_u64(self.quotas.fuel);
        e.put_u64(self.quotas.max_stack as u64);
        e.put_u64(self.quotas.max_calls as u64);
        e.put_u64(self.quotas.max_outputs as u64);
        e.put_u32(self.caps);
        snipe_util::codec::encode_seq(&mut e, self.inputs.iter());
        e.put_u64(self.input_pos as u64);
        snipe_util::codec::encode_seq(&mut e, self.outputs.iter());
        match self.finished {
            None => e.put_u8(0),
            Some(StepOutcome::Running) => e.put_u8(1),
            Some(StepOutcome::Halted) => e.put_u8(2),
            Some(StepOutcome::Trapped(t)) => {
                e.put_u8(3);
                e.put_u8(t as u8);
            }
        }
        e.finish()
    }

    /// Restore a machine from a checkpoint.
    pub fn restore(bytes: bytes::Bytes) -> SnipeResult<Vm> {
        let mut d = Decoder::new(bytes);
        let code: Vec<Instr> = snipe_util::codec::decode_seq(&mut d)?;
        let pc = d.get_u32()?;
        let stack: Vec<i64> = snipe_util::codec::decode_seq(&mut d)?;
        let locals: Vec<i64> = snipe_util::codec::decode_seq(&mut d)?;
        let calls: Vec<u32> = snipe_util::codec::decode_seq(&mut d)?;
        let fuel_left = d.get_u64()?;
        let quotas = Quotas {
            fuel: d.get_u64()?,
            max_stack: d.get_u64()? as usize,
            max_calls: d.get_u64()? as usize,
            max_outputs: d.get_u64()? as usize,
        };
        let caps = d.get_u32()?;
        let inputs: Vec<i64> = snipe_util::codec::decode_seq(&mut d)?;
        let input_pos = d.get_u64()? as usize;
        let outputs: Vec<i64> = snipe_util::codec::decode_seq(&mut d)?;
        let finished = match d.get_u8()? {
            0 => None,
            1 => Some(StepOutcome::Running),
            2 => Some(StepOutcome::Halted),
            3 => {
                let t = d.get_u8()?;
                // Trap discriminants are stable by declaration order.
                let trap = [
                    Trap::FuelExhausted,
                    Trap::StackOverflow,
                    Trap::StackUnderflow,
                    Trap::CallOverflow,
                    Trap::CallUnderflow,
                    Trap::DivideByZero,
                    Trap::CapabilityDenied,
                    Trap::OutputQuota,
                    Trap::NoInput,
                    Trap::BadSyscall,
                    Trap::PcOutOfRange,
                ]
                .get(t as usize)
                .copied()
                .ok_or_else(|| snipe_util::error::SnipeError::Codec("bad trap".into()))?;
                Some(StepOutcome::Trapped(trap))
            }
            _ => return Err(snipe_util::error::SnipeError::Codec("bad finished tag".into())),
        };
        d.expect_end()?;
        Ok(Vm {
            code,
            pc,
            stack,
            locals,
            calls,
            fuel_left,
            quotas,
            caps,
            inputs,
            input_pos,
            outputs,
            finished,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Program;

    fn run_program(code: Vec<Instr>, locals: u16, caps: u32) -> (Vm, StepOutcome) {
        let p = Program { code, locals, required_caps: caps };
        p.verify_static().unwrap();
        let mut vm = Vm::new(&p, caps, Quotas::default());
        let mut host = NullHost::default();
        let out = vm.run_slice(1_000_000, &mut host);
        (vm, out)
    }

    #[test]
    fn arithmetic_and_emit() {
        let (vm, out) = run_program(
            vec![
                Instr::PushI(6),
                Instr::PushI(7),
                Instr::Mul,
                Instr::Syscall(sys::EMIT),
                Instr::Halt,
            ],
            0,
            CAP_EMIT,
        );
        assert_eq!(out, StepOutcome::Halted);
        assert_eq!(vm.outputs, vec![42]);
    }

    #[test]
    fn loop_with_locals_computes_sum() {
        // sum 1..=10 into local0, i in local1
        let code = vec![
            // i = 10
            Instr::PushI(10),
            Instr::Store(1),
            // loop: if i == 0 jump to end(12)
            Instr::Load(1), // 2
            Instr::Jz(12),  // 3
            // sum += i
            Instr::Load(0),  // 4
            Instr::Load(1),  // 5
            Instr::Add,      // 6
            Instr::Store(0), // 7
            // i -= 1
            Instr::Load(1),  // 8
            Instr::PushI(1), // 9
            Instr::Sub,      // 10
            Instr::Store(1), // 11 -> falls through? need jump back
            // (12) emit sum
            Instr::Load(0),
            Instr::Syscall(sys::EMIT),
            Instr::Halt,
        ];
        // Insert jump back: easier to rebuild with explicit indices.
        let code = {
            let mut c = code;
            // after Store(1) at index 11, jump back to 2; shift end labels
            c.insert(12, Instr::Jmp(2));
            // now "end" is at 13: fix Jz target
            c[3] = Instr::Jz(13);
            c
        };
        let (vm, out) = run_program(code, 2, CAP_EMIT);
        assert_eq!(out, StepOutcome::Halted);
        assert_eq!(vm.outputs, vec![55]);
    }

    #[test]
    fn call_and_ret() {
        // main: push 5, call square(4), emit, halt; square: dup, mul, ret
        let code = vec![
            Instr::PushI(5),
            Instr::Call(4),
            Instr::Syscall(sys::EMIT),
            Instr::Halt,
            Instr::Dup, // 4
            Instr::Mul,
            Instr::Ret,
        ];
        let (vm, out) = run_program(code, 0, CAP_EMIT);
        assert_eq!(out, StepOutcome::Halted);
        assert_eq!(vm.outputs, vec![25]);
    }

    #[test]
    fn fuel_quota_traps_infinite_loop() {
        let p = Program { code: vec![Instr::Jmp(0)], locals: 0, required_caps: 0 };
        let mut vm = Vm::new(&p, 0, Quotas { fuel: 1000, ..Quotas::default() });
        let mut host = NullHost::default();
        let out = vm.run_slice(10_000, &mut host);
        assert_eq!(out, StepOutcome::Trapped(Trap::FuelExhausted));
        assert_eq!(vm.fuel_left(), 0);
    }

    #[test]
    fn capability_denied_without_grant() {
        let (_, out) = run_program(
            vec![Instr::PushI(1), Instr::Syscall(sys::EMIT), Instr::Halt],
            0,
            0, // no caps granted
        );
        assert_eq!(out, StepOutcome::Trapped(Trap::CapabilityDenied));
    }

    #[test]
    fn divide_by_zero_traps() {
        let (_, out) =
            run_program(vec![Instr::PushI(1), Instr::PushI(0), Instr::Div, Instr::Halt], 0, 0);
        assert_eq!(out, StepOutcome::Trapped(Trap::DivideByZero));
    }

    #[test]
    fn stack_quota_enforced() {
        // push forever
        let p = Program { code: vec![Instr::PushI(1), Instr::Jmp(0)], locals: 0, required_caps: 0 };
        let mut vm = Vm::new(&p, 0, Quotas { max_stack: 16, ..Quotas::default() });
        let out = vm.run_slice(1000, &mut NullHost::default());
        assert_eq!(out, StepOutcome::Trapped(Trap::StackOverflow));
    }

    #[test]
    fn stack_underflow_traps() {
        let (_, out) = run_program(vec![Instr::Pop, Instr::Halt], 0, 0);
        assert_eq!(out, StepOutcome::Trapped(Trap::StackUnderflow));
    }

    #[test]
    fn input_reading() {
        let p = Program {
            code: vec![
                Instr::Syscall(sys::READ_INPUT),
                Instr::Syscall(sys::READ_INPUT),
                Instr::Add,
                Instr::Syscall(sys::EMIT),
                Instr::Halt,
            ],
            locals: 0,
            required_caps: CAP_EMIT,
        };
        let mut vm = Vm::new(&p, CAP_EMIT, Quotas::default());
        vm.inputs = vec![20, 22];
        let out = vm.run_slice(100, &mut NullHost::default());
        assert_eq!(out, StepOutcome::Halted);
        assert_eq!(vm.outputs, vec![42]);
        // Without inputs: trap.
        let mut vm2 = Vm::new(&p, CAP_EMIT, Quotas::default());
        assert_eq!(
            vm2.run_slice(100, &mut NullHost::default()),
            StepOutcome::Trapped(Trap::NoInput)
        );
    }

    #[test]
    fn host_send_and_log() {
        let p = Program {
            code: vec![
                Instr::PushI(9),  // target
                Instr::PushI(42), // value
                Instr::Syscall(sys::SEND),
                Instr::PushI(7),
                Instr::Syscall(sys::LOG),
                Instr::Syscall(sys::NOW_MS),
                Instr::Syscall(sys::EMIT),
                Instr::Halt,
            ],
            locals: 0,
            required_caps: CAP_SEND | CAP_LOG | CAP_TIME | CAP_EMIT,
        };
        let mut vm = Vm::new(&p, CAP_SEND | CAP_LOG | CAP_TIME | CAP_EMIT, Quotas::default());
        let mut host = NullHost { time_ms: 1234, ..NullHost::default() };
        assert_eq!(vm.run_slice(100, &mut host), StepOutcome::Halted);
        assert_eq!(host.sent, vec![(9, 42)]);
        assert_eq!(host.logged, vec![7]);
        assert_eq!(vm.outputs, vec![1234]);
    }

    #[test]
    fn checkpoint_restore_is_byte_exact_and_resumable() {
        // Long-running loop summing inputs; checkpoint mid-flight.
        let code = vec![
            Instr::PushI(1000),
            Instr::Store(1),
            Instr::Load(1), // 2
            Instr::Jz(13),
            Instr::Load(0),
            Instr::Load(1),
            Instr::Add,
            Instr::Store(0),
            Instr::Load(1),
            Instr::PushI(1),
            Instr::Sub,
            Instr::Store(1),
            Instr::Jmp(2),
            Instr::Load(0), // 13
            Instr::Syscall(sys::EMIT),
            Instr::Halt,
        ];
        let p = Program { code, locals: 2, required_caps: CAP_EMIT };
        let mut host = NullHost::default();
        // Reference: run to completion in one go.
        let mut reference = Vm::new(&p, CAP_EMIT, Quotas::default());
        assert_eq!(reference.run_slice(100_000, &mut host), StepOutcome::Halted);

        // Run 500 steps, checkpoint, restore, continue.
        let mut vm = Vm::new(&p, CAP_EMIT, Quotas::default());
        assert_eq!(vm.run_slice(500, &mut host), StepOutcome::Running);
        let ckpt = vm.checkpoint();
        let mut restored = Vm::restore(ckpt.clone()).unwrap();
        assert_eq!(restored, vm);
        // Double round trip is stable.
        assert_eq!(restored.checkpoint(), ckpt);
        assert_eq!(restored.run_slice(100_000, &mut host), StepOutcome::Halted);
        assert_eq!(restored.outputs, reference.outputs);
        assert_eq!(restored.fuel_left(), reference.fuel_left());
    }

    #[test]
    fn trapped_vm_checkpoint_round_trips() {
        let p = Program { code: vec![Instr::Pop], locals: 0, required_caps: 0 };
        let mut vm = Vm::new(&p, 0, Quotas::default());
        vm.step(&mut NullHost::default());
        let restored = Vm::restore(vm.checkpoint()).unwrap();
        assert_eq!(restored.finished(), Some(StepOutcome::Trapped(Trap::StackUnderflow)));
    }
}
