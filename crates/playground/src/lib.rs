//! # snipe-playground — secure execution of mobile code
//!
//! "A 'playground' runs under the supervision of a SNIPE daemon and
//! facilitates the secure execution of mobile code. It is a trusted
//! environment which safely allows the execution of such code within an
//! untrusted environment. The playground is responsible for downloading
//! the code from a file server, verifying its authenticity and
//! integrity, verifying that the code has the rights needed to access
//! restricted resources, enforcing access restrictions and resource
//! usage quotas, and logging access violations and excess resource use"
//! (§3.6).
//!
//! The paper anticipated mobile code in "a machine-independent language
//! such as Java, Python, or Limbo ... Implementations of such languages
//! may also be able to arrange the allocation of program storage, in a
//! way that facilitates checkpointing, restart, and migration" (§3.6).
//! This crate implements exactly that: a small stack [`vm`] whose
//! entire state serializes through the canonical codec, so checkpoint,
//! restart and migration are byte-exact by construction.

pub mod bytecode;
pub mod playground;
pub mod vm;

pub use bytecode::{CodeImage, Instr, Program};
pub use playground::{PlaygroundActor, PlaygroundConfig, Violation};
pub use vm::{Quotas, StepOutcome, SyscallHost, Trap, Vm, CAP_EMIT, CAP_LOG, CAP_SEND, CAP_TIME};
