//! The playground actor: supervised, sliced execution of verified
//! mobile code.
//!
//! The actor verifies a [`CodeImage`] against the trusted code-signing
//! key, refuses code whose required capabilities exceed the grant, then
//! runs the VM in fuel slices on a timer (modelling the preemptive
//! scheduling a 1997 Unix host gave native playground processes).
//! Violations are logged and reported; checkpoints can be taken on
//! demand via a signal (§5.8: "the playground provides hooks for
//! checkpointing, restart, and process migration for use by resource
//! managers").

use std::collections::HashMap;

use bytes::Bytes;

use snipe_crypto::sign::PublicKey;
use snipe_netsim::actor::{Event, PortableActor, SimCtx};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{seal, Proto};

use crate::bytecode::CodeImage;
use crate::vm::{Quotas, StepOutcome, SyscallHost, Vm};

/// Signal number requesting a checkpoint (delivered by daemons/RMs).
pub const SIG_CHECKPOINT: u32 = 20;

const TIMER_SLICE: u64 = 1;

/// One logged access violation or quota event (§3.6: "logging access
/// violations and excess resource use").
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// When it happened.
    pub at: SimTime,
    /// Description.
    pub what: String,
}

/// Reports from a playground to its supervisor.
#[derive(Clone, Debug, PartialEq)]
pub enum PlaygroundMsg {
    /// The program halted; outputs attached.
    Done {
        /// Values the program emitted.
        outputs: Vec<i64>,
        /// Fuel actually consumed.
        fuel_used: u64,
    },
    /// The program was stopped (trap / rejected image).
    Failed {
        /// Reason.
        reason: String,
    },
    /// A checkpoint, taken on [`SIG_CHECKPOINT`].
    Checkpoint {
        /// Serialized VM state (restorable with [`Vm::restore`]).
        state: Bytes,
    },
}

const MAGIC: u8 = 0xA5;

impl WireEncode for PlaygroundMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MAGIC);
        match self {
            PlaygroundMsg::Done { outputs, fuel_used } => {
                enc.put_u8(1);
                snipe_util::codec::encode_seq(enc, outputs.iter());
                enc.put_u64(*fuel_used);
            }
            PlaygroundMsg::Failed { reason } => {
                enc.put_u8(2);
                enc.put_str(reason);
            }
            PlaygroundMsg::Checkpoint { state } => {
                enc.put_u8(3);
                enc.put_bytes(state);
            }
        }
    }
}

impl WireDecode for PlaygroundMsg {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        if dec.get_u8()? != MAGIC {
            return Err(SnipeError::Codec("not a playground message".into()));
        }
        Ok(match dec.get_u8()? {
            1 => PlaygroundMsg::Done {
                outputs: snipe_util::codec::decode_seq(dec)?,
                fuel_used: dec.get_u64()?,
            },
            2 => PlaygroundMsg::Failed { reason: dec.get_str()? },
            3 => PlaygroundMsg::Checkpoint { state: dec.get_bytes()? },
            t => return Err(SnipeError::Codec(format!("unknown playground tag {t}"))),
        })
    }
}

/// Playground configuration.
#[derive(Clone)]
pub struct PlaygroundConfig {
    /// Key trusted to sign mobile code.
    pub code_signer: PublicKey,
    /// Capabilities granted to this code (must cover its requirements).
    pub granted_caps: u32,
    /// Resource quotas.
    pub quotas: Quotas,
    /// Instructions per scheduling slice.
    pub slice: u64,
    /// Interval between slices.
    pub slice_interval: SimDuration,
    /// Where to send reports.
    pub supervisor: Endpoint,
    /// Address book for the SEND syscall: program-visible handle →
    /// endpoint. Anything not listed is unreachable (access control).
    pub address_book: HashMap<i64, Endpoint>,
}

/// Host bridge: translates VM syscalls into simulator operations.
struct ActorHost<'a> {
    ctx: &'a mut dyn SimCtx,
    address_book: &'a HashMap<i64, Endpoint>,
    violations: &'a mut Vec<Violation>,
    logged: &'a mut Vec<i64>,
}

impl SyscallHost for ActorHost<'_> {
    fn now_ms(&mut self) -> i64 {
        (self.ctx.now().as_nanos() / 1_000_000) as i64
    }

    fn send(&mut self, target: i64, value: i64) {
        match self.address_book.get(&target) {
            Some(&ep) => {
                let mut e = Encoder::new();
                e.put_u8(0xA6); // playground data message
                e.put_i64(value);
                self.ctx.send(ep, seal(Proto::Raw, e.finish()));
            }
            None => self.violations.push(Violation {
                at: self.ctx.now(),
                what: format!("send to unauthorized target {target}"),
            }),
        }
    }

    fn log(&mut self, value: i64) {
        self.logged.push(value);
    }
}

/// The playground actor.
pub struct PlaygroundActor {
    cfg: PlaygroundConfig,
    image: CodeImage,
    inputs: Vec<i64>,
    vm: Option<Vm>,
    /// Violations observed so far.
    pub violations: Vec<Violation>,
    /// Values the program logged.
    pub logged: Vec<i64>,
    reported: bool,
}

impl PlaygroundActor {
    /// Host `image` with `inputs` pre-queued.
    pub fn new(cfg: PlaygroundConfig, image: CodeImage, inputs: Vec<i64>) -> PlaygroundActor {
        PlaygroundActor {
            cfg,
            image,
            inputs,
            vm: None,
            violations: Vec::new(),
            logged: Vec::new(),
            reported: false,
        }
    }

    /// Resume from a checkpoint instead of starting fresh (migration /
    /// restart path).
    pub fn from_checkpoint(
        cfg: PlaygroundConfig,
        image: CodeImage,
        state: Bytes,
    ) -> SnipeResult<PlaygroundActor> {
        let vm = Vm::restore(state)?;
        Ok(PlaygroundActor {
            cfg,
            image,
            inputs: Vec::new(),
            vm: Some(vm),
            violations: Vec::new(),
            logged: Vec::new(),
            reported: false,
        })
    }

    fn report(&mut self, ctx: &mut dyn SimCtx, msg: &PlaygroundMsg) {
        let sup = self.cfg.supervisor;
        ctx.send(sup, seal(Proto::Raw, msg.encode_to_bytes()));
    }

    fn fail(&mut self, ctx: &mut dyn SimCtx, reason: String) {
        self.violations.push(Violation { at: ctx.now(), what: reason.clone() });
        if !self.reported {
            self.reported = true;
            self.report(ctx, &PlaygroundMsg::Failed { reason }.clone());
        }
        let me = ctx.me();
        ctx.kill(me);
    }
}

impl PortableActor for PlaygroundActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start => {
                // 1. Verify authenticity + integrity + static safety.
                let program = match self.image.verify(&self.cfg.code_signer) {
                    Ok(p) => p,
                    Err(e) => return self.fail(ctx, format!("image rejected: {e}")),
                };
                // 2. Check the rights the code demands against the grant
                //    ("verifying that the code has the rights needed",
                //    §3.6).
                if program.required_caps & !self.cfg.granted_caps != 0 {
                    return self.fail(
                        ctx,
                        format!(
                            "code requires capabilities {:#x} beyond grant {:#x}",
                            program.required_caps, self.cfg.granted_caps
                        ),
                    );
                }
                if self.vm.is_none() {
                    let mut vm = Vm::new(&program, self.cfg.granted_caps, self.cfg.quotas);
                    vm.inputs = std::mem::take(&mut self.inputs);
                    self.vm = Some(vm);
                }
                ctx.set_timer(self.cfg.slice_interval, TIMER_SLICE);
            }
            Event::Timer { token: TIMER_SLICE } => {
                let Some(vm) = self.vm.as_mut() else { return };
                let outcome = {
                    let mut host = ActorHost {
                        ctx,
                        address_book: &self.cfg.address_book,
                        violations: &mut self.violations,
                        logged: &mut self.logged,
                    };
                    vm.run_slice(self.cfg.slice, &mut host)
                };
                match outcome {
                    StepOutcome::Running => ctx.set_timer(self.cfg.slice_interval, TIMER_SLICE),
                    StepOutcome::Halted => {
                        let vm = self.vm.as_ref().expect("running vm");
                        let msg = PlaygroundMsg::Done {
                            outputs: vm.outputs.clone(),
                            fuel_used: self.cfg.quotas.fuel - vm.fuel_left(),
                        };
                        self.reported = true;
                        self.report(ctx, &msg);
                        let me = ctx.me();
                        ctx.kill(me);
                    }
                    StepOutcome::Trapped(t) => {
                        self.fail(ctx, format!("trap: {t:?}"));
                    }
                }
            }
            Event::Signal { signum: SIG_CHECKPOINT, .. } => {
                if let Some(vm) = self.vm.as_ref() {
                    let state = vm.checkpoint();
                    self.report(ctx, &PlaygroundMsg::Checkpoint { state });
                }
            }
            _ => {}
        }
    }
}

portable_actor!(PlaygroundActor);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Instr, Program};
    use crate::vm::{sys, CAP_EMIT};
    use snipe_crypto::sign::KeyPair;
    use snipe_netsim::actor::{Actor, Ctx};
    use snipe_netsim::medium::Medium;
    use snipe_netsim::topology::{HostCfg, Topology};
    use snipe_netsim::world::World;
    use snipe_util::rng::Xoshiro256;
    use snipe_wire::frame::open;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Collector {
        log: Rc<RefCell<Vec<PlaygroundMsg>>>,
    }

    impl Actor for Collector {
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: Event) {
            if let Event::Packet { payload, .. } = event {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    if let Ok(m) = PlaygroundMsg::decode_from_bytes(body) {
                        self.log.borrow_mut().push(m);
                    }
                }
            }
        }
    }

    fn setup() -> (World, Endpoint, snipe_util::id::HostId, Rc<RefCell<Vec<PlaygroundMsg>>>) {
        let mut topo = Topology::new();
        let net = topo.add_network("lan", Medium::ethernet100(), true);
        let h = topo.add_host(HostCfg::named("pg"));
        let s = topo.add_host(HostCfg::named("sup"));
        topo.attach(h, net);
        topo.attach(s, net);
        let mut world = World::new(topo, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let sup_ep = Endpoint::new(s, 10);
        world.spawn(s, 10, Box::new(Collector { log: log.clone() }));
        (world, sup_ep, h, log)
    }

    fn cfg(signer: &KeyPair, sup: Endpoint) -> PlaygroundConfig {
        PlaygroundConfig {
            code_signer: signer.public.clone(),
            granted_caps: CAP_EMIT,
            quotas: Quotas::default(),
            slice: 1000,
            slice_interval: SimDuration::from_millis(1),
            supervisor: sup,
            address_book: HashMap::new(),
        }
    }

    #[test]
    fn verified_code_runs_to_completion() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let signer = KeyPair::generate_default(&mut rng);
        let program = Program {
            code: vec![
                Instr::PushI(21),
                Instr::PushI(2),
                Instr::Mul,
                Instr::Syscall(sys::EMIT),
                Instr::Halt,
            ],
            locals: 0,
            required_caps: CAP_EMIT,
        };
        let image = CodeImage::sign(&mut rng, &signer, "job", &program);
        let (mut world, sup, h, log) = setup();
        let pg = PlaygroundActor::new(cfg(&signer, sup), image, vec![]);
        world.spawn(h, 100, Box::new(pg));
        world.run_for(SimDuration::from_secs(1));
        let log = log.borrow();
        assert!(
            matches!(&log[..], [PlaygroundMsg::Done { outputs, .. }] if outputs == &vec![42]),
            "{log:?}"
        );
    }

    #[test]
    fn unsigned_code_rejected() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let signer = KeyPair::generate_default(&mut rng);
        let mallory = KeyPair::generate_default(&mut rng);
        let program = Program { code: vec![Instr::Halt], locals: 0, required_caps: 0 };
        let image = CodeImage::sign(&mut rng, &mallory, "evil", &program);
        let (mut world, sup, h, log) = setup();
        let pg = PlaygroundActor::new(cfg(&signer, sup), image, vec![]);
        world.spawn(h, 100, Box::new(pg));
        world.run_for(SimDuration::from_secs(1));
        let log = log.borrow();
        assert!(
            matches!(&log[..], [PlaygroundMsg::Failed { reason }] if reason.contains("image rejected")),
            "{log:?}"
        );
    }

    #[test]
    fn excess_capability_demand_rejected() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let signer = KeyPair::generate_default(&mut rng);
        let program = Program {
            code: vec![Instr::Halt],
            locals: 0,
            required_caps: crate::vm::CAP_SEND, // not granted
        };
        let image = CodeImage::sign(&mut rng, &signer, "greedy", &program);
        let (mut world, sup, h, log) = setup();
        let pg = PlaygroundActor::new(cfg(&signer, sup), image, vec![]);
        world.spawn(h, 100, Box::new(pg));
        world.run_for(SimDuration::from_secs(1));
        let log = log.borrow();
        assert!(
            matches!(&log[..], [PlaygroundMsg::Failed { reason }] if reason.contains("capabilities")),
            "{log:?}"
        );
    }

    #[test]
    fn runaway_code_killed_by_fuel_quota() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let signer = KeyPair::generate_default(&mut rng);
        let program = Program { code: vec![Instr::Jmp(0)], locals: 0, required_caps: 0 };
        let image = CodeImage::sign(&mut rng, &signer, "spin", &program);
        let (mut world, sup, h, log) = setup();
        let mut c = cfg(&signer, sup);
        c.quotas.fuel = 10_000;
        let pg = PlaygroundActor::new(c, image, vec![]);
        world.spawn(h, 100, Box::new(pg));
        world.run_for(SimDuration::from_secs(1));
        let log = log.borrow();
        assert!(
            matches!(&log[..], [PlaygroundMsg::Failed { reason }] if reason.contains("FuelExhausted")),
            "{log:?}"
        );
        // The playground actor exited.
        assert!(!world.is_bound(Endpoint::new(h, 100)));
    }

    #[test]
    fn checkpoint_signal_produces_restorable_state() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let signer = KeyPair::generate_default(&mut rng);
        // Long loop so it is still running when the signal arrives.
        let program = Program {
            code: vec![
                Instr::PushI(100_000),
                Instr::Store(0),
                Instr::Load(0), // 2
                Instr::Jz(9),
                Instr::Load(0),
                Instr::PushI(1),
                Instr::Sub,
                Instr::Store(0),
                Instr::Jmp(2),
                Instr::PushI(7), // 9
                Instr::Syscall(sys::EMIT),
                Instr::Halt,
            ],
            locals: 1,
            required_caps: CAP_EMIT,
        };
        let image = CodeImage::sign(&mut rng, &signer, "long", &program);
        let (mut world, sup, h, log) = setup();
        let pg = PlaygroundActor::new(cfg(&signer, sup), image.clone(), vec![]);
        let pg_ep = world.spawn(h, 100, Box::new(pg)).unwrap();
        world.run_for(SimDuration::from_millis(10));
        world.signal(None, pg_ep, SIG_CHECKPOINT);
        world.run_for(SimDuration::from_millis(5));
        let state = log
            .borrow()
            .iter()
            .find_map(|m| match m {
                PlaygroundMsg::Checkpoint { state } => Some(state.clone()),
                _ => None,
            })
            .expect("checkpoint produced");
        // Restore into a new playground on the supervisor host and let
        // it finish (migration!).
        let (mut world2, sup2, h2, log2) = setup();
        let mut rng2 = Xoshiro256::seed_from_u64(5);
        let signer2 = KeyPair::generate_default(&mut rng2);
        let pg2 = PlaygroundActor::from_checkpoint(cfg(&signer2, sup2), image, state).unwrap();
        world2.spawn(h2, 100, Box::new(pg2));
        world2.run_for(SimDuration::from_secs(60));
        let log2 = log2.borrow();
        assert!(
            matches!(&log2[..], [PlaygroundMsg::Done { outputs, .. }] if outputs == &vec![7]),
            "restored code must finish: {log2:?}"
        );
    }
}
