//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no crate registry, so external
//! dependencies are vendored. The workspace lists `rand` as a
//! dev-dependency in several crates but never imports its API — all
//! simulation randomness flows through the deterministic
//! `snipe_util::rng::Xoshiro256`. This crate exists only to satisfy the
//! dependency edge; a tiny seedable generator is provided in case a
//! future test wants one without reaching into `snipe-util`.

/// A minimal splitmix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
