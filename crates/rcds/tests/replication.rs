//! Integration: RC replicas over the network simulator — convergence by
//! anti-entropy and availability through replica failover (paper §2.1,
//! §6; basis of experiment E3).

use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::server::RcServerActor;
use snipe_rcds::uri::Uri;
use snipe_util::id::HostId;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::ports;
use std::sync::{Arc, Mutex};

/// A test client actor wrapping RcClient.
struct ClientActor {
    rc: RcClient,
    script: Vec<(SimDuration, Op)>,
    results: Arc<Mutex<Vec<(u64, bool, Vec<Assertion>)>>>,
}

enum Op {
    Put(Uri, &'static str, &'static str),
    Get(Uri),
}

const TIMER_SCRIPT: u64 = 100;
const TIMER_RC: u64 = 101;

impl ClientActor {
    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        for (id, result) in self.rc.drain_done() {
            match result {
                Ok(reply) => self.results.lock().unwrap().push((id, true, reply.assertions)),
                Err(_) => self.results.lock().unwrap().push((id, false, vec![])),
            }
        }
        if let Some(dl) = self.rc.next_deadline() {
            let delay = dl.saturating_since(ctx.now()) + SimDuration::from_micros(1);
            ctx.set_timer(delay, TIMER_RC);
        }
    }
}

impl Actor for ClientActor {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                if !self.script.is_empty() {
                    ctx.set_timer(self.script[0].0, TIMER_SCRIPT);
                }
            }
            Event::Timer { token: TIMER_SCRIPT } => {
                let (_, op) = self.script.remove(0);
                match op {
                    Op::Put(uri, k, v) => {
                        self.rc.put(ctx.now(), &uri, vec![Assertion::new(k, v)]);
                    }
                    Op::Get(uri) => {
                        self.rc.get(ctx.now(), &uri);
                    }
                }
                if !self.script.is_empty() {
                    let next = self.script[0].0;
                    ctx.set_timer(next, TIMER_SCRIPT);
                }
                self.flush(ctx);
            }
            Event::Timer { token: TIMER_RC } => {
                self.rc.on_timer(ctx.now());
                self.flush(ctx);
            }
            Event::Packet { from, payload } => {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    self.rc.on_packet(ctx.now(), from, body);
                }
                self.flush(ctx);
            }
            _ => {}
        }
    }
}

fn build_world(replicas: usize) -> (World, Vec<Endpoint>, HostId) {
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let mut eps = Vec::new();
    for i in 0..replicas {
        let h = topo.add_host(HostCfg::named(format!("rc{i}")));
        topo.attach(h, net);
        eps.push(Endpoint::new(h, ports::RC_SERVER));
    }
    let client_host = topo.add_host(HostCfg::named("client"));
    topo.attach(client_host, net);
    let mut world = World::new(topo, 42);
    for (i, ep) in eps.iter().enumerate() {
        let peers: Vec<Endpoint> = eps.iter().copied().filter(|e| e != ep).collect();
        let server = RcServerActor::new(i as u64 + 1, peers, SimDuration::from_millis(200));
        world.spawn(ep.host, ep.port, Box::new(server));
    }
    (world, eps, client_host)
}

#[test]
fn put_on_one_replica_readable_from_another_after_sync() {
    let (mut world, eps, client_host) = build_world(3);
    let results = Arc::new(Mutex::new(Vec::new()));
    let uri = Uri::process(7);
    // Writer talks only to replica 0; reader only to replica 2.
    let writer = ClientActor {
        rc: RcClient::new(vec![eps[0]], SimDuration::from_millis(50)),
        script: vec![(SimDuration::from_millis(1), Op::Put(uri.clone(), "loc", "h9:100"))],
        results: results.clone(),
    };
    let reader = ClientActor {
        rc: RcClient::new(vec![eps[2]], SimDuration::from_millis(50)),
        script: vec![(SimDuration::from_secs(2), Op::Get(uri.clone()))],
        results: results.clone(),
    };
    world.spawn(client_host, 50, Box::new(writer));
    world.spawn(client_host, 51, Box::new(reader));
    world.run_for(SimDuration::from_secs(3));
    let res = results.lock().unwrap();
    assert_eq!(res.len(), 2, "both ops must complete: {res:?}");
    let get = res.iter().find(|(_, _, a)| !a.is_empty()).expect("get returned data");
    assert_eq!(get.2[0].name, "loc");
    assert_eq!(get.2[0].value, "h9:100");
}

#[test]
fn client_fails_over_when_preferred_replica_dies() {
    let (mut world, eps, client_host) = build_world(3);
    let results = Arc::new(Mutex::new(Vec::new()));
    let uri = Uri::process(9);
    // Seed data into replica 1 (which gossips to all).
    let writer = ClientActor {
        rc: RcClient::new(vec![eps[1]], SimDuration::from_millis(50)),
        script: vec![(SimDuration::from_millis(1), Op::Put(uri.clone(), "k", "v"))],
        results: results.clone(),
    };
    // Reader prefers replica 0, which we kill before the read.
    let reader = ClientActor {
        rc: RcClient::new(vec![eps[0], eps[1], eps[2]], SimDuration::from_millis(50)),
        script: vec![(SimDuration::from_secs(2), Op::Get(uri.clone()))],
        results: results.clone(),
    };
    world.spawn(client_host, 50, Box::new(writer));
    world.spawn(client_host, 51, Box::new(reader));
    let dead = eps[0].host;
    world.schedule_fn(SimTime::ZERO + SimDuration::from_secs(1), move |w| w.host_down(dead));
    world.run_for(SimDuration::from_secs(4));
    let res = results.lock().unwrap();
    let get = res.iter().find(|(_, _, a)| !a.is_empty());
    assert!(get.is_some(), "read must succeed via failover: {res:?}");
}

#[test]
fn recovered_replica_catches_up() {
    let (mut world, eps, client_host) = build_world(2);
    let results = Arc::new(Mutex::new(Vec::new()));
    let uri = Uri::process(11);
    // Kill replica 1 first; write to replica 0 while 1 is down; revive
    // 1; then read from 1 only.
    let dead = eps[1].host;
    world.schedule_fn(SimTime::ZERO + SimDuration::from_millis(10), move |w| w.host_down(dead));
    let writer = ClientActor {
        rc: RcClient::new(vec![eps[0]], SimDuration::from_millis(50)),
        script: vec![(SimDuration::from_millis(100), Op::Put(uri.clone(), "k", "late"))],
        results: results.clone(),
    };
    world.schedule_fn(SimTime::ZERO + SimDuration::from_secs(1), move |w| w.host_up(dead));
    let reader = ClientActor {
        rc: RcClient::new(vec![eps[1]], SimDuration::from_millis(50)),
        script: vec![(SimDuration::from_secs(3), Op::Get(uri.clone()))],
        results: results.clone(),
    };
    world.spawn(client_host, 50, Box::new(writer));
    world.spawn(client_host, 51, Box::new(reader));
    world.run_for(SimDuration::from_secs(5));
    let res = results.lock().unwrap();
    let get = res.iter().find(|(_, _, a)| !a.is_empty());
    assert!(get.is_some(), "revived replica must have caught up: {res:?}");
    assert_eq!(get.unwrap().2[0].value, "late");
}
