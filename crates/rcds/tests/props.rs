//! Property tests for the catalog's anti-entropy machinery.
//!
//! Two contracts carry the sharded metadata plane: the version-vector
//! codec must round-trip exactly (a replica that mis-reads a peer's
//! vector re-sends or skips updates forever), and `updates_since`
//! pagination must deliver every logged update exactly once across
//! continuation batches no matter where the byte-budget cuts fall.

use proptest::{collection, prop_assert, prop_assert_eq, proptest};
use snipe_rcds::assertion::Assertion;
use snipe_rcds::store::{decode_vector, encode_vector, RcStore, VersionVector};
use snipe_rcds::uri::Uri;
use snipe_util::codec::{Decoder, Encoder};

proptest! {
    /// Arbitrary vectors (any origin ids, any seqs, any size) survive
    /// encode → decode bit-exactly.
    #[test]
    fn vector_codec_round_trips(
        entries in collection::vec((0u64.., 0u64..), 0..12),
    ) {
        let mut v = VersionVector::new();
        for (origin, seq) in entries {
            v.insert(origin, seq);
        }
        let mut e = Encoder::new();
        encode_vector(&mut e, &v);
        let mut d = Decoder::new(e.finish());
        let back = decode_vector(&mut d).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(d.remaining(), 0);
    }

    /// Decoding a truncated vector is an error, never a panic or a
    /// partial success that silently drops entries.
    #[test]
    fn truncated_vector_decode_errs(
        entries in collection::vec((0u64.., 0u64..), 1..8),
        cut in 0usize..128,
    ) {
        let mut v = VersionVector::new();
        for (origin, seq) in entries {
            v.insert(origin, seq);
        }
        let mut e = Encoder::new();
        encode_vector(&mut e, &v);
        let full = e.finish();
        let cut = cut % full.len();
        let mut d = Decoder::new(full.slice(..cut));
        prop_assert!(decode_vector(&mut d).is_err());
    }

    /// Pagination: a peer that repeatedly asks "what am I missing?"
    /// with a small limit receives every update exactly once — no
    /// batch exceeds the limit, nothing is lost, nothing repeats —
    /// regardless of how many origins interleave in the log or where
    /// the batch boundaries cut an origin's run.
    #[test]
    fn updates_since_paginates_without_loss_or_dup(
        per_origin in collection::vec(1usize..14, 1..4),
        limit in 1usize..7,
    ) {
        // Several origins write independently, then one replica merges
        // every log (the anti-entropy source).
        let mut source = RcStore::new(99);
        for (o, &n) in per_origin.iter().enumerate() {
            let mut origin = RcStore::new(o as u64 + 1);
            for i in 0..n {
                let uri = Uri::process((o * 100 + i) as u64);
                origin.put(&uri, Assertion::new("k", format!("v{o}.{i}")), i as u64);
            }
            for u in origin.updates_since(&VersionVector::new(), usize::MAX) {
                source.apply(u);
            }
        }
        let total = source.log_len();

        // A fresh sink pages everything across via its own vector.
        let mut sink = RcStore::new(100);
        let mut seen = Vec::new();
        let mut batches = 0usize;
        loop {
            let page = source.updates_since(sink.version_vector(), limit);
            prop_assert!(page.len() <= limit, "batch of {} exceeds limit {limit}", page.len());
            if page.is_empty() {
                break;
            }
            batches += 1;
            prop_assert!(batches <= total + 1, "pagination failed to make progress");
            for u in page {
                seen.push((u.origin, u.seq));
                sink.apply(u);
            }
        }

        // Exactly once: every (origin, seq) in the source log, no dups.
        let mut expected: Vec<(u64, u64)> = per_origin
            .iter()
            .enumerate()
            .flat_map(|(o, &n)| (0..n as u64).map(move |s| (o as u64 + 1, s)))
            .collect();
        expected.sort_unstable();
        let mut got = seen.clone();
        got.sort_unstable();
        prop_assert_eq!(got.len(), seen.len(), "an update was delivered twice");
        prop_assert_eq!(got, expected);
        prop_assert_eq!(sink.log_len(), total);
        prop_assert_eq!(sink.version_vector(), source.version_vector());
    }
}
