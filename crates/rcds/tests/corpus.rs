//! Hostile-input corpus for the RC protocol decoders (the
//! `wire/tests/corpus.rs` pattern, one layer up the stack).
//!
//! RC traffic rides Raw-sealed datagrams, so the envelope checksum
//! catches random corruption — but a forged or misrouted body arrives
//! with a *valid* envelope. The contract under test: client and server
//! never panic on hostile bytes, never act on garbage, and count every
//! rejection (`RcClientStats::decode_drops` / `RcServerActor::
//! decode_drops`) so chaos soaks can assert drops instead of silence.

use bytes::Bytes;
use snipe_netsim::actor::{Event, PortableActor, SimCtx};
use snipe_netsim::topology::{Endpoint, Topology};
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::proto::{RcMsg, RcOp};
use snipe_rcds::server::RcServerActor;
use snipe_util::codec::{Encoder, WireEncode};
use snipe_util::id::{HostId, NetId};
use snipe_util::rng::Xoshiro256;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{seal, Proto};

fn ep(h: u32, p: u16) -> Endpoint {
    Endpoint::new(HostId(h), p)
}

/// Minimal engine-free [`SimCtx`]: enough to drive a server actor's
/// packet path directly with attacker-chosen datagrams.
struct FakeCtx {
    now: SimTime,
    me: Endpoint,
    sent: Vec<(Endpoint, Bytes)>,
    rng: Xoshiro256,
    topo: Topology,
}

impl FakeCtx {
    fn new(me: Endpoint) -> FakeCtx {
        FakeCtx {
            now: SimTime::ZERO,
            me,
            sent: Vec::new(),
            rng: Xoshiro256::seed_from_u64(7),
            topo: Topology::new(),
        }
    }
}

impl SimCtx for FakeCtx {
    fn now(&self) -> SimTime {
        self.now
    }
    fn me(&self) -> Endpoint {
        self.me
    }
    fn host(&self) -> HostId {
        self.me.host
    }
    fn send(&mut self, to: Endpoint, payload: Bytes) {
        self.sent.push((to, payload));
    }
    fn send_via(&mut self, to: Endpoint, payload: Bytes, _via: NetId) {
        self.sent.push((to, payload));
    }
    fn set_timer(&mut self, _delay: SimDuration, _token: u64) {}
    fn spawn_portable(
        &mut self,
        _host: HostId,
        _port: u16,
        _actor: Box<dyn PortableActor>,
    ) -> Option<Endpoint> {
        None
    }
    fn alloc_port(&mut self, _host: HostId) -> u16 {
        9999
    }
    fn is_bound(&self, _ep: Endpoint) -> bool {
        false
    }
    fn kill(&mut self, _ep: Endpoint) {}
    fn signal(&mut self, _to: Endpoint, _signum: u32) {}
    fn rng(&mut self) -> &mut Xoshiro256 {
        &mut self.rng
    }
    fn topology(&self) -> &Topology {
        &self.topo
    }
    fn host_up(&self, _h: HostId) -> bool {
        true
    }
}

/// Deterministic garbage generator (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn bytes(&mut self, len: usize) -> Bytes {
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            v.extend_from_slice(&self.next().to_le_bytes());
        }
        v.truncate(len);
        Bytes::from(v)
    }
}

fn started_server() -> (RcServerActor, FakeCtx) {
    let mut ctx = FakeCtx::new(ep(1, 2));
    let mut srv = RcServerActor::new(1, vec![], SimDuration::from_millis(500));
    srv.on_event(&mut ctx, Event::Start);
    (srv, ctx)
}

fn valid_response() -> Bytes {
    RcMsg::Response {
        id: 7,
        ok: true,
        assertions: vec![Assertion::new("loc", "host3")],
        uris: vec!["urn:snipe:x".into()],
    }
    .encode_to_bytes()
}

#[test]
fn truncated_requests_are_counted_server_drops() {
    let (mut srv, mut ctx) = started_server();
    let body = RcMsg::Request {
        id: 1,
        op: RcOp::Put("urn:snipe:x".into(), vec![Assertion::new("k", "v")]),
    }
    .encode_to_bytes();
    let mut fed = 0u64;
    // Every strict prefix, re-sealed so the envelope is valid and the
    // hostile bytes reach the RC decoder itself.
    for len in 0..body.len() {
        let dg = seal(Proto::Raw, body.slice(0..len));
        srv.on_event(&mut ctx, Event::Packet { from: ep(9, 50), payload: dg });
        fed += 1;
        assert_eq!(srv.decode_drops, fed, "prefix of {len} bytes was not counted");
    }
    // Bytes that are not even a valid envelope count too.
    srv.on_event(&mut ctx, Event::Packet { from: ep(9, 50), payload: Bytes::from_static(b"junk") });
    assert_eq!(srv.decode_drops, fed + 1);
    // The server still works: a pristine request gets a response.
    let sent_before = ctx.sent.len();
    let good = RcMsg::Request { id: 2, op: RcOp::Get("urn:snipe:x".into()) }.encode_to_bytes();
    srv.on_event(&mut ctx, Event::Packet { from: ep(9, 50), payload: seal(Proto::Raw, good) });
    assert_eq!(srv.decode_drops, fed + 1);
    assert!(ctx.sent.len() > sent_before, "server stopped answering after hostile input");
}

#[test]
fn bit_flipped_responses_never_panic_and_are_counted() {
    // No pending op: every flip outcome must be a counted rejection —
    // a decode failure or a stale (unsolicited) reply — never a
    // completion and never a panic. (Payload integrity against random
    // corruption is the sealed envelope's job one layer down; this
    // pins the client's accounting for bodies that arrive "valid".)
    let mut client = RcClient::new(vec![ep(1, 2)], SimDuration::from_millis(300));
    let valid = valid_response();
    let mut flips = 0u64;
    for i in 0..valid.len() {
        for bit in 0..8 {
            let mut hostile = valid.to_vec();
            hostile[i] ^= 1 << bit;
            client.on_packet(SimTime::ZERO, ep(1, 2), Bytes::from(hostile));
            flips += 1;
        }
    }
    let s = client.stats();
    assert_eq!(s.decode_drops + s.stale_replies, flips, "unaccounted flip outcome: {s:?}");
    assert!(client.drain_done().is_empty(), "a corrupted reply completed an op");
}

#[test]
fn random_garbage_never_panics_client_or_server() {
    let mut client = RcClient::new(vec![ep(1, 2)], SimDuration::from_millis(300));
    let (mut srv, mut ctx) = started_server();
    let mut rng = Rng(0xc0ffee);
    let n = 2_000u64;
    for i in 0..n {
        let len = (i % 97) as usize;
        let garbage = rng.bytes(len);
        client.on_packet(SimTime::ZERO, ep(1, 2), garbage.clone());
        srv.on_event(&mut ctx, Event::Packet { from: ep(9, 50), payload: garbage });
    }
    let s = client.stats();
    assert_eq!(s.decode_drops + s.stale_replies, n);
    assert_eq!(srv.decode_drops, n);
    assert!(client.drain_done().is_empty());
}

#[test]
fn forged_giant_vector_count_is_rejected_without_allocating() {
    // A SyncReq claiming u32::MAX vector entries in a 6-byte body:
    // before sizing the allocation the decoder must check the claim
    // against the bytes actually present.
    let mut enc = Encoder::new();
    enc.put_u8(0xA1); // RC magic
    enc.put_u8(3); // TAG_SYNC_REQ
    enc.put_u32(u32::MAX);
    let (mut srv, mut ctx) = started_server();
    srv.on_event(
        &mut ctx,
        Event::Packet { from: ep(9, 50), payload: seal(Proto::Raw, enc.finish()) },
    );
    assert_eq!(srv.decode_drops, 1);
    assert!(ctx.sent.is_empty(), "a forged sync request must not trigger pushes");
}

#[test]
fn forged_giant_update_batch_is_rejected() {
    // Same attack against the SyncPush update-sequence decoder.
    let mut enc = Encoder::new();
    enc.put_u8(0xA1); // RC magic
    enc.put_u8(4); // TAG_SYNC_PUSH
    enc.put_u32(u32::MAX);
    let (mut srv, mut ctx) = started_server();
    srv.on_event(
        &mut ctx,
        Event::Packet { from: ep(9, 50), payload: seal(Proto::Raw, enc.finish()) },
    );
    assert_eq!(srv.decode_drops, 1);
}

#[test]
fn sync_chatter_on_a_client_port_is_a_counted_drop() {
    // Valid RC traffic of the wrong kind: a replica's sync message
    // misdelivered to a client must be dropped and counted, not crash
    // the pending-op bookkeeping.
    let mut client = RcClient::new(vec![ep(1, 2)], SimDuration::from_millis(300));
    let sync = RcMsg::SyncReq { vector: Default::default() }.encode_to_bytes();
    client.on_packet(SimTime::ZERO, ep(1, 2), sync);
    assert_eq!(client.stats().decode_drops, 1);
    assert!(client.drain_done().is_empty());
}
