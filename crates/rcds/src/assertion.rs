//! Metadata assertions: `name=value` pairs with automatic timestamps.
//!
//! "The metadata for a resource (a list of attribute 'name=value' pairs
//! called assertions) are maintained in a separate distributed and
//! replicated registry" (§2.1). "Automatic time stamping of metadata by
//! the RC servers also helps temporally dis-joint tasks communication
//! by allowing them to decide for themselves the age and therefore
//! relevance of any metadata previously stored" (§3.1).
//!
//! Replicas merge assertions by last-writer-wins on a
//! ([`Stamp`] = Lamport time, server id) pair; deletions are tombstones
//! so they win over concurrent re-publishes with older stamps.

use bytes::Bytes;

use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::SnipeResult;

/// A total-ordered update stamp: (Lamport clock, origin server id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Stamp {
    /// Lamport logical time.
    pub lamport: u64,
    /// Tie-breaking origin server id.
    pub server: u64,
}

impl WireEncode for Stamp {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.lamport);
        enc.put_u64(self.server);
    }
}

impl WireDecode for Stamp {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        Ok(Stamp { lamport: dec.get_u64()?, server: dec.get_u64()? })
    }
}

/// One attribute assertion about a resource.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assertion {
    /// Attribute name (e.g. `comm-address`, `public-key`, `cpu-count`).
    pub name: String,
    /// Attribute value.
    pub value: String,
    /// LWW merge stamp, assigned by the accepting server.
    pub stamp: Stamp,
    /// Simulated wall time when the accepting server stored it (the
    /// "age" consumers use to judge relevance).
    pub stored_at_ns: u64,
    /// Tombstone: true marks a deletion.
    pub deleted: bool,
    /// Optional publisher signature over `name=value` (signed metadata
    /// subsets, §2.1/§4).
    pub signature: Option<Vec<u8>>,
}

impl Assertion {
    /// A plain (unsigned, live) assertion with a zero stamp; servers
    /// assign the real stamp on acceptance.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Assertion {
        Assertion {
            name: name.into(),
            value: value.into(),
            stamp: Stamp::default(),
            stored_at_ns: 0,
            deleted: false,
            signature: None,
        }
    }

    /// The canonical bytes a publisher signs.
    pub fn signable_bytes(uri: &str, name: &str, value: &str) -> Bytes {
        let mut e = Encoder::new();
        e.put_str(uri);
        e.put_str(name);
        e.put_str(value);
        e.finish()
    }

    /// Does `self` supersede `other` under LWW?
    pub fn supersedes(&self, other: &Assertion) -> bool {
        self.stamp > other.stamp
    }
}

impl WireEncode for Assertion {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_str(&self.value);
        self.stamp.encode(enc);
        enc.put_u64(self.stored_at_ns);
        enc.put_bool(self.deleted);
        match &self.signature {
            None => enc.put_bool(false),
            Some(s) => {
                enc.put_bool(true);
                enc.put_bytes(s);
            }
        }
    }
}

impl WireDecode for Assertion {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        Ok(Assertion {
            name: dec.get_str()?,
            value: dec.get_str()?,
            stamp: Stamp::decode(dec)?,
            stored_at_ns: dec.get_u64()?,
            deleted: dec.get_bool()?,
            signature: if dec.get_bool()? { Some(dec.get_bytes()?.to_vec()) } else { None },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_total_order() {
        let a = Stamp { lamport: 1, server: 9 };
        let b = Stamp { lamport: 2, server: 0 };
        let c = Stamp { lamport: 2, server: 1 };
        assert!(a < b && b < c);
    }

    #[test]
    fn supersedes_uses_stamp() {
        let mut a = Assertion::new("k", "v1");
        let mut b = Assertion::new("k", "v2");
        a.stamp = Stamp { lamport: 5, server: 1 };
        b.stamp = Stamp { lamport: 5, server: 2 };
        assert!(b.supersedes(&a));
        assert!(!a.supersedes(&b));
    }

    #[test]
    fn wire_round_trip_plain_and_signed() {
        let mut a = Assertion::new("comm-address", "h3:100");
        a.stamp = Stamp { lamport: 7, server: 2 };
        a.stored_at_ns = 123_456;
        let back = Assertion::decode_from_bytes(a.encode_to_bytes()).unwrap();
        assert_eq!(back, a);

        let mut s = a.clone();
        s.signature = Some(vec![1, 2, 3]);
        s.deleted = true;
        let back = Assertion::decode_from_bytes(s.encode_to_bytes()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn signable_bytes_bind_uri_name_value() {
        let a = Assertion::signable_bytes("urn:x", "k", "v");
        let b = Assertion::signable_bytes("urn:y", "k", "v");
        let c = Assertion::signable_bytes("urn:x", "k", "w");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
