//! Consistent-hash sharding of the RC name space.
//!
//! The paper's RCDS is a handful of replicated catalog servers; the
//! ROADMAP's north star is millions of registered names. A [`ShardMap`]
//! splits the URI namespace across *replica groups*: each shard is
//! owned by one group of RCDS server replicas, anti-entropy runs only
//! inside a group, and clients route each operation to the owning
//! group.
//!
//! The map is a classic consistent-hash ring with virtual nodes. Ring
//! points are derived from `(group index, vnode index)` — *not* from
//! the group count — so growing the map by one group only claims ring
//! segments from existing groups and never reshuffles keys between two
//! old groups. That bounds resharding traffic to the data actually
//! moving onto the new replicas.

use snipe_netsim::topology::Endpoint;

/// Virtual nodes per replica group. 64 points per group keeps the
/// worst-observed imbalance across 16 groups under ~20% while the ring
/// stays small enough to binary-search in a handful of cache lines.
const VNODES_PER_GROUP: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, seeded by `seed` (the standard offset basis is
/// mixed with the seed so vnode points and key hashes share a family
/// but never collide structurally).
fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Maps every URI to the replica group that owns its shard.
///
/// Cheap to clone (clients and servers each hold a copy) and pure —
/// routing decisions depend only on the group list, so any two parties
/// constructed with the same groups agree on ownership without any
/// coordination protocol.
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// One entry per shard: the RCDS server replicas owning it.
    groups: Vec<Vec<Endpoint>>,
    /// Sorted `(ring point, group index)` pairs.
    ring: Vec<(u64, u32)>,
}

impl ShardMap {
    /// Build a map over `groups` replica groups. Empty groups are
    /// allowed while bootstrapping but route like any other — callers
    /// that need an endpoint must check [`ShardMap::group`] is
    /// non-empty.
    ///
    /// # Panics
    /// If `groups` is empty: a ring with no points cannot route.
    pub fn new(groups: Vec<Vec<Endpoint>>) -> ShardMap {
        assert!(!groups.is_empty(), "ShardMap needs at least one replica group");
        let mut ring = Vec::with_capacity(groups.len() * VNODES_PER_GROUP);
        for (gi, _) in groups.iter().enumerate() {
            for vn in 0..VNODES_PER_GROUP {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&(gi as u64).to_le_bytes());
                key[8..].copy_from_slice(&(vn as u64).to_le_bytes());
                ring.push((fnv64(0x5ead_ed11, &key), gi as u32));
            }
        }
        ring.sort_unstable();
        ring.dedup_by_key(|&mut (p, _)| p);
        ShardMap { groups, ring }
    }

    /// Number of shards (= replica groups).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The replicas owning shard `idx`.
    ///
    /// # Panics
    /// If `idx >= group_count()`.
    pub fn group(&self, idx: usize) -> &[Endpoint] {
        &self.groups[idx]
    }

    /// The shard owning `uri` — first ring point at or after the key's
    /// hash, wrapping at the top of the ring.
    pub fn shard_of(&self, uri: &str) -> usize {
        let h = fnv64(0, uri.as_bytes());
        let i = self.ring.partition_point(|&(p, _)| p < h);
        let (_, gi) = self.ring[if i == self.ring.len() { 0 } else { i }];
        gi as usize
    }

    /// The replica group owning `uri` (shorthand for
    /// `group(shard_of(uri))`).
    pub fn group_for(&self, uri: &str) -> &[Endpoint] {
        self.group(self.shard_of(uri))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_util::id::HostId;

    fn groups(n: usize) -> Vec<Vec<Endpoint>> {
        (0..n)
            .map(|g| (0..3).map(|r| Endpoint::new(HostId((g * 8 + r) as u32), 7100)).collect())
            .collect()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("uri:proc/host{}/task{}", i % 97, i)).collect()
    }

    #[test]
    fn routing_is_deterministic_across_instances() {
        let a = ShardMap::new(groups(8));
        let b = ShardMap::new(groups(8));
        for k in keys(1000) {
            assert_eq!(a.shard_of(&k), b.shard_of(&k));
        }
    }

    #[test]
    fn load_spreads_over_all_groups() {
        let m = ShardMap::new(groups(8));
        let mut counts = vec![0usize; 8];
        let total = 10_000;
        for k in keys(total) {
            counts[m.shard_of(&k)] += 1;
        }
        let ideal = total / 8;
        for (g, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 3 && c < ideal * 3,
                "group {g} holds {c} of {total} keys (ideal {ideal})"
            );
        }
    }

    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_group() {
        let old = ShardMap::new(groups(4));
        let new = ShardMap::new(groups(5));
        let total = 10_000;
        let mut moved = 0usize;
        for k in keys(total) {
            let (a, b) = (old.shard_of(&k), new.shard_of(&k));
            if a != b {
                moved += 1;
                assert_eq!(b, 4, "key {k} moved between two pre-existing groups ({a} -> {b})");
            }
        }
        // The new group should claim roughly 1/5 of the space; well
        // under the ~100% a modulo-hash reshard would move.
        assert!(moved < total * 35 / 100, "adding one group moved {moved} of {total} keys");
        assert!(moved > 0, "the new group claimed no keys at all");
    }

    #[test]
    fn group_for_matches_shard_of() {
        let m = ShardMap::new(groups(4));
        for k in keys(200) {
            assert_eq!(m.group_for(&k), m.group(m.shard_of(&k)));
        }
    }
}
