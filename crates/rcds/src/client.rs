//! The sans-IO RC client with replica failover.
//!
//! Every SNIPE component embeds one of these to read and publish
//! metadata. Requests go to the preferred replica; on timeout the
//! client rotates to the next replica and retries, which is what made
//! the paper's testbed observe "an almost perfect level of
//! availability" (§6) — reproduced as experiment E3.

use std::collections::HashMap;

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::time::{SimDuration, SimTime};

use crate::assertion::Assertion;
use crate::proto::{RcMsg, RcOp};
use crate::uri::Uri;

/// The payload of a completed RC operation.
#[derive(Clone, Debug, PartialEq)]
pub struct RcReply {
    /// Assertions returned (Get/Put).
    pub assertions: Vec<Assertion>,
    /// URIs returned (Find).
    pub uris: Vec<String>,
}

/// A completed request: (request id, outcome).
pub type Completion = (u64, SnipeResult<RcReply>);

struct Pending {
    op: RcOp,
    deadline: SimTime,
    attempts: u32,
}

/// The client state machine.
pub struct RcClient {
    replicas: Vec<Endpoint>,
    preferred: usize,
    timeout: SimDuration,
    max_attempts: u32,
    next_id: u64,
    pending: HashMap<u64, Pending>,
    sends: Vec<(Endpoint, Bytes)>,
    done: Vec<Completion>,
}

impl RcClient {
    /// A client talking to the given replicas.
    pub fn new(replicas: Vec<Endpoint>, timeout: SimDuration) -> RcClient {
        RcClient {
            replicas,
            preferred: 0,
            timeout,
            max_attempts: 6,
            next_id: 1,
            pending: HashMap::new(),
            sends: Vec::new(),
            done: Vec::new(),
        }
    }

    /// Known replica endpoints.
    pub fn replicas(&self) -> &[Endpoint] {
        &self.replicas
    }

    /// Outstanding request count.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    fn issue(&mut self, now: SimTime, op: RcOp) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let deadline = now + self.timeout;
        self.transmit(id, &op);
        self.pending.insert(id, Pending { op, deadline, attempts: 1 });
        id
    }

    fn transmit(&mut self, id: u64, op: &RcOp) {
        if self.replicas.is_empty() {
            return;
        }
        let target = self.replicas[self.preferred % self.replicas.len()];
        let msg = RcMsg::Request { id, op: op.clone() };
        self.sends.push((target, msg.encode_to_bytes()));
    }

    /// Fetch assertions for a URI. Returns the request id.
    pub fn get(&mut self, now: SimTime, uri: &Uri) -> u64 {
        self.issue(now, RcOp::Get(uri.as_str().to_string()))
    }

    /// Publish assertions about a URI.
    pub fn put(&mut self, now: SimTime, uri: &Uri, assertions: Vec<Assertion>) -> u64 {
        self.issue(now, RcOp::Put(uri.as_str().to_string(), assertions))
    }

    /// Tombstone one attribute.
    pub fn delete(&mut self, now: SimTime, uri: &Uri, name: &str) -> u64 {
        self.issue(now, RcOp::Delete(uri.as_str().to_string(), name.to_string()))
    }

    /// Find URIs by exact attribute match.
    pub fn find(&mut self, now: SimTime, name: &str, value: &str) -> u64 {
        self.issue(now, RcOp::Find(name.to_string(), value.to_string()))
    }

    /// Feed a raw datagram payload that arrived on our port.
    /// Non-RC or unknown-id messages are ignored.
    pub fn on_packet(&mut self, _now: SimTime, _from: Endpoint, body: Bytes) {
        let Ok(msg) = RcMsg::decode_from_bytes(body) else {
            return;
        };
        let RcMsg::Response { id, ok, assertions, uris } = msg else {
            return;
        };
        if let Some(_p) = self.pending.remove(&id) {
            let result = if ok {
                Ok(RcReply { assertions, uris })
            } else {
                Err(SnipeError::Invalid("server rejected request".into()))
            };
            self.done.push((id, result));
        }
    }

    /// Retry / fail over requests whose deadline passed.
    pub fn on_timer(&mut self, now: SimTime) {
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            let mut p = self.pending.remove(&id).expect("expired id present");
            if p.attempts >= self.max_attempts {
                self.done.push((
                    id,
                    Err(SnipeError::Unavailable(format!(
                        "RC request gave up after {} attempts",
                        p.attempts
                    ))),
                ));
                continue;
            }
            // Fail over to the next replica.
            self.preferred = (self.preferred + 1) % self.replicas.len().max(1);
            p.attempts += 1;
            p.deadline = now + self.timeout;
            self.transmit(id, &p.op);
            self.pending.insert(id, p);
        }
    }

    /// Earliest wanted wake-up.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// Datagrams to transmit (payloads for `WireStack::send_raw` /
    /// direct `ctx.send` after Raw-sealing).
    pub fn drain_sends(&mut self) -> Vec<(Endpoint, Bytes)> {
        std::mem::take(&mut self.sends)
    }

    /// Completed operations.
    pub fn drain_done(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_util::id::HostId;

    fn ep(h: u32) -> Endpoint {
        Endpoint::new(HostId(h), 2)
    }

    fn reply(id: u64) -> Bytes {
        RcMsg::Response { id, ok: true, assertions: vec![], uris: vec![] }.encode_to_bytes()
    }

    #[test]
    fn request_reply_cycle() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100));
        let id = c.get(SimTime::ZERO, &Uri::process(1));
        let sends = c.drain_sends();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, ep(1));
        c.on_packet(SimTime::ZERO, ep(1), reply(id));
        let done = c.drain_done();
        assert_eq!(done.len(), 1);
        assert!(done[0].1.is_ok());
        assert_eq!(c.pending_count(), 0);
    }

    #[test]
    fn timeout_fails_over_to_next_replica() {
        let mut c = RcClient::new(vec![ep(1), ep(2)], SimDuration::from_millis(100));
        let _id = c.get(SimTime::ZERO, &Uri::process(1));
        assert_eq!(c.drain_sends()[0].0, ep(1));
        c.on_timer(SimTime::ZERO + SimDuration::from_millis(150));
        let sends = c.drain_sends();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, ep(2), "retry must target the next replica");
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(10));
        let id = c.get(SimTime::ZERO, &Uri::process(1));
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now = now + SimDuration::from_millis(20);
            c.on_timer(now);
            c.drain_sends();
        }
        let done = c.drain_done();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
        assert_eq!(done[0].1.as_ref().unwrap_err().kind(), "unavailable");
    }

    #[test]
    fn late_duplicate_response_ignored() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100));
        let id = c.get(SimTime::ZERO, &Uri::process(1));
        c.on_packet(SimTime::ZERO, ep(1), reply(id));
        c.on_packet(SimTime::ZERO, ep(1), reply(id));
        assert_eq!(c.drain_done().len(), 1);
    }

    #[test]
    fn unknown_or_garbage_packets_ignored() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100));
        c.on_packet(SimTime::ZERO, ep(1), Bytes::from_static(b"garbage"));
        c.on_packet(SimTime::ZERO, ep(1), reply(999));
        assert!(c.drain_done().is_empty());
    }

    #[test]
    fn deadline_reporting() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100));
        assert!(c.next_deadline().is_none());
        c.get(SimTime::ZERO, &Uri::process(1));
        assert_eq!(c.next_deadline(), Some(SimTime::ZERO + SimDuration::from_millis(100)));
    }
}
