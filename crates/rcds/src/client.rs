//! The sans-IO RC client with replica failover.
//!
//! Every SNIPE component embeds one of these to read and publish
//! metadata. Requests go to the preferred replica; on timeout the
//! client rotates to the next replica and retries, which is what made
//! the paper's testbed observe "an almost perfect level of
//! availability" (§6) — reproduced as experiment E3.
//!
//! At scale the client grows two more layers (ROADMAP open item 2):
//! a [`ShardMap`] routes each operation to the replica group owning
//! the URI's shard, and an optional TTL lookup cache absorbs repeated
//! Gets, invalidated locally on every write the client itself issues.
//! Replies are matched to the replica actually queried — a late reply
//! from a replica we have already failed away from is dropped and
//! counted, never surfaced as a completion.

use std::collections::HashMap;

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::time::{SimDuration, SimTime};

use crate::assertion::Assertion;
use crate::proto::{RcMsg, RcOp};
use crate::shard::ShardMap;
use crate::uri::Uri;

/// The payload of a completed RC operation.
#[derive(Clone, Debug, PartialEq)]
pub struct RcReply {
    /// Assertions returned (Get/Put).
    pub assertions: Vec<Assertion>,
    /// URIs returned (Find).
    pub uris: Vec<String>,
}

/// A completed request: (request id, outcome).
pub type Completion = (u64, SnipeResult<RcReply>);

/// Drop/cache counters, mirroring the `wire` stack's style of counted
/// (never silent) discards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RcClientStats {
    /// Datagrams that failed to decode as RC messages.
    pub decode_drops: u64,
    /// Responses whose id matched no outstanding request (duplicates,
    /// or replies landing after the request gave up).
    pub stale_replies: u64,
    /// Responses for a live request but from a replica other than the
    /// one currently queried — dropped, the request stays pending.
    pub mismatched_replies: u64,
    /// Gets served from the local TTL cache without touching the wire.
    pub cache_hits: u64,
    /// Gets that missed the cache (only counted when caching is on).
    pub cache_misses: u64,
    /// Cache entries discarded because this client wrote the URI.
    pub cache_invalidations: u64,
}

struct Pending {
    op: RcOp,
    deadline: SimTime,
    attempts: u32,
    /// The replica this request was last transmitted to; replies from
    /// anyone else are dropped as mismatched.
    target: Option<Endpoint>,
}

struct CacheEntry {
    assertions: Vec<Assertion>,
    expires: SimTime,
}

/// The client state machine.
pub struct RcClient {
    replicas: Vec<Endpoint>,
    shard_map: Option<ShardMap>,
    preferred: usize,
    timeout: SimDuration,
    max_attempts: u32,
    next_id: u64,
    pending: HashMap<u64, Pending>,
    sends: Vec<(Endpoint, Bytes)>,
    done: Vec<Completion>,
    cache_ttl: Option<SimDuration>,
    cache: HashMap<String, CacheEntry>,
    stats: RcClientStats,
}

impl RcClient {
    /// A client talking to the given replicas.
    pub fn new(replicas: Vec<Endpoint>, timeout: SimDuration) -> RcClient {
        RcClient {
            replicas,
            shard_map: None,
            preferred: 0,
            timeout,
            max_attempts: 6,
            next_id: 1,
            pending: HashMap::new(),
            sends: Vec::new(),
            done: Vec::new(),
            cache_ttl: None,
            cache: HashMap::new(),
            stats: RcClientStats::default(),
        }
    }

    /// Route per-URI operations through a shard map instead of the flat
    /// replica list. `Find` (a namespace-wide scan) and operations on
    /// an empty group still fall back to the flat list.
    pub fn with_shard_map(mut self, map: ShardMap) -> RcClient {
        self.shard_map = Some(map);
        self
    }

    /// Serve repeated `get`s of a URI from a local cache for `ttl`
    /// after each fetched reply; the client's own writes invalidate.
    pub fn with_cache_ttl(mut self, ttl: SimDuration) -> RcClient {
        self.cache_ttl = Some(ttl);
        self
    }

    /// Known replica endpoints (the flat fallback list).
    pub fn replicas(&self) -> &[Endpoint] {
        &self.replicas
    }

    /// Outstanding request count.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Drop/cache counters.
    pub fn stats(&self) -> RcClientStats {
        self.stats
    }

    /// The replica an op routes to right now: the owning shard group
    /// under a shard map (URI-addressed ops only), else the flat list,
    /// rotated by the failover cursor.
    fn route(&self, op: &RcOp) -> Option<Endpoint> {
        if let Some(map) = &self.shard_map {
            let uri = match op {
                RcOp::Get(u) | RcOp::Put(u, _) | RcOp::Delete(u, _) => Some(u.as_str()),
                RcOp::Find(..) => None,
            };
            if let Some(u) = uri {
                let group = map.group_for(u);
                if !group.is_empty() {
                    return Some(group[self.preferred % group.len()]);
                }
            }
        }
        if self.replicas.is_empty() {
            return None;
        }
        Some(self.replicas[self.preferred % self.replicas.len()])
    }

    fn issue(&mut self, now: SimTime, op: RcOp) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let deadline = now + self.timeout;
        let target = self.transmit(id, &op);
        self.pending.insert(id, Pending { op, deadline, attempts: 1, target });
        id
    }

    fn transmit(&mut self, id: u64, op: &RcOp) -> Option<Endpoint> {
        let target = self.route(op)?;
        let msg = RcMsg::Request { id, op: op.clone() };
        self.sends.push((target, msg.encode_to_bytes()));
        Some(target)
    }

    /// Fetch assertions for a URI. Returns the request id. With caching
    /// enabled a fresh cache entry completes immediately (the id shows
    /// up in [`RcClient::drain_done`] without any wire traffic).
    pub fn get(&mut self, now: SimTime, uri: &Uri) -> u64 {
        if self.cache_ttl.is_some() {
            if let Some(e) = self.cache.get(uri.as_str()) {
                if e.expires > now {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.stats.cache_hits += 1;
                    self.done
                        .push((id, Ok(RcReply { assertions: e.assertions.clone(), uris: vec![] })));
                    return id;
                }
            }
            self.stats.cache_misses += 1;
        }
        self.issue(now, RcOp::Get(uri.as_str().to_string()))
    }

    /// Publish assertions about a URI.
    pub fn put(&mut self, now: SimTime, uri: &Uri, assertions: Vec<Assertion>) -> u64 {
        self.invalidate(uri.as_str());
        self.issue(now, RcOp::Put(uri.as_str().to_string(), assertions))
    }

    /// Tombstone one attribute.
    pub fn delete(&mut self, now: SimTime, uri: &Uri, name: &str) -> u64 {
        self.invalidate(uri.as_str());
        self.issue(now, RcOp::Delete(uri.as_str().to_string(), name.to_string()))
    }

    /// Find URIs by exact attribute match.
    pub fn find(&mut self, now: SimTime, name: &str, value: &str) -> u64 {
        self.issue(now, RcOp::Find(name.to_string(), value.to_string()))
    }

    fn invalidate(&mut self, uri: &str) {
        if self.cache.remove(uri).is_some() {
            self.stats.cache_invalidations += 1;
        }
    }

    /// Feed a raw datagram payload that arrived on our port. Garbage,
    /// unknown-id and wrong-replica messages are dropped and counted.
    pub fn on_packet(&mut self, now: SimTime, from: Endpoint, body: Bytes) {
        let Ok(msg) = RcMsg::decode_from_bytes(body) else {
            self.stats.decode_drops += 1;
            return;
        };
        let RcMsg::Response { id, ok, assertions, uris } = msg else {
            // Valid RC traffic that isn't a response (sync chatter
            // misdelivered to a client port).
            self.stats.decode_drops += 1;
            return;
        };
        let Some(p) = self.pending.get(&id) else {
            self.stats.stale_replies += 1;
            return;
        };
        if p.target != Some(from) {
            // A replica we already failed away from finally answered.
            // The live retry owns this ticket now; surfacing this copy
            // could complete a Get with data older than the failover
            // target's, so drop it (the regression test below pins
            // this).
            self.stats.mismatched_replies += 1;
            return;
        }
        let p = self.pending.remove(&id).expect("checked above");
        let result = if ok {
            if let Some(ttl) = self.cache_ttl {
                if let RcOp::Get(uri) = &p.op {
                    self.cache.insert(
                        uri.clone(),
                        CacheEntry { assertions: assertions.clone(), expires: now + ttl },
                    );
                }
            }
            Ok(RcReply { assertions, uris })
        } else {
            Err(SnipeError::Invalid("server rejected request".into()))
        };
        self.done.push((id, result));
    }

    /// Retry / fail over requests whose deadline passed.
    pub fn on_timer(&mut self, now: SimTime) {
        let expired: Vec<u64> =
            self.pending.iter().filter(|(_, p)| p.deadline <= now).map(|(id, _)| *id).collect();
        for id in expired {
            let mut p = self.pending.remove(&id).expect("expired id present");
            if p.attempts >= self.max_attempts {
                self.done.push((
                    id,
                    Err(SnipeError::Unavailable(format!(
                        "RC request gave up after {} attempts",
                        p.attempts
                    ))),
                ));
                continue;
            }
            // Fail over to the next replica.
            self.preferred = (self.preferred + 1) % self.replicas.len().max(1);
            p.attempts += 1;
            p.deadline = now + self.timeout;
            p.target = self.transmit(id, &p.op);
            self.pending.insert(id, p);
        }
    }

    /// Earliest wanted wake-up.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// Datagrams to transmit (payloads for `WireStack::send_raw` /
    /// direct `ctx.send` after Raw-sealing).
    pub fn drain_sends(&mut self) -> Vec<(Endpoint, Bytes)> {
        std::mem::take(&mut self.sends)
    }

    /// Completed operations.
    pub fn drain_done(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_util::id::HostId;

    fn ep(h: u32) -> Endpoint {
        Endpoint::new(HostId(h), 2)
    }

    fn reply(id: u64) -> Bytes {
        RcMsg::Response { id, ok: true, assertions: vec![], uris: vec![] }.encode_to_bytes()
    }

    fn reply_with(id: u64, assertions: Vec<Assertion>) -> Bytes {
        RcMsg::Response { id, ok: true, assertions, uris: vec![] }.encode_to_bytes()
    }

    #[test]
    fn request_reply_cycle() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100));
        let id = c.get(SimTime::ZERO, &Uri::process(1));
        let sends = c.drain_sends();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, ep(1));
        c.on_packet(SimTime::ZERO, ep(1), reply(id));
        let done = c.drain_done();
        assert_eq!(done.len(), 1);
        assert!(done[0].1.is_ok());
        assert_eq!(c.pending_count(), 0);
    }

    #[test]
    fn timeout_fails_over_to_next_replica() {
        let mut c = RcClient::new(vec![ep(1), ep(2)], SimDuration::from_millis(100));
        let _id = c.get(SimTime::ZERO, &Uri::process(1));
        assert_eq!(c.drain_sends()[0].0, ep(1));
        c.on_timer(SimTime::ZERO + SimDuration::from_millis(150));
        let sends = c.drain_sends();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, ep(2), "retry must target the next replica");
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(10));
        let id = c.get(SimTime::ZERO, &Uri::process(1));
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now = now + SimDuration::from_millis(20);
            c.on_timer(now);
            c.drain_sends();
        }
        let done = c.drain_done();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
        assert_eq!(done[0].1.as_ref().unwrap_err().kind(), "unavailable");
    }

    #[test]
    fn late_duplicate_response_ignored() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100));
        let id = c.get(SimTime::ZERO, &Uri::process(1));
        c.on_packet(SimTime::ZERO, ep(1), reply(id));
        c.on_packet(SimTime::ZERO, ep(1), reply(id));
        assert_eq!(c.drain_done().len(), 1);
        assert_eq!(c.stats().stale_replies, 1);
    }

    #[test]
    fn unknown_or_garbage_packets_ignored() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100));
        c.on_packet(SimTime::ZERO, ep(1), Bytes::from_static(b"garbage"));
        c.on_packet(SimTime::ZERO, ep(1), reply(999));
        assert!(c.drain_done().is_empty());
        assert_eq!(c.stats().decode_drops, 1);
        assert_eq!(c.stats().stale_replies, 1);
    }

    #[test]
    fn deadline_reporting() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100));
        assert!(c.next_deadline().is_none());
        c.get(SimTime::ZERO, &Uri::process(1));
        assert_eq!(c.next_deadline(), Some(SimTime::ZERO + SimDuration::from_millis(100)));
    }

    /// The satellite-1 regression: a reply from the *original* replica
    /// arriving after the client failed over to another must be
    /// dropped (counted), and the completion must come from the replica
    /// actually queried.
    #[test]
    fn late_reply_after_failover_is_dropped() {
        let mut c = RcClient::new(vec![ep(1), ep(2)], SimDuration::from_millis(100));
        let id = c.get(SimTime::ZERO, &Uri::process(1));
        assert_eq!(c.drain_sends()[0].0, ep(1));
        // Deadline passes; the retry goes to replica 2.
        c.on_timer(SimTime::ZERO + SimDuration::from_millis(150));
        assert_eq!(c.drain_sends()[0].0, ep(2));
        // Replica 1's answer limps in late: dropped, request stays live.
        let a1 = vec![Assertion::new("v", "old")];
        c.on_packet(SimTime::ZERO + SimDuration::from_millis(160), ep(1), reply_with(id, a1));
        assert!(c.drain_done().is_empty(), "stale replica must not complete the request");
        assert_eq!(c.pending_count(), 1);
        assert_eq!(c.stats().mismatched_replies, 1);
        // The queried replica answers: that is the completion.
        let a2 = vec![Assertion::new("v", "new")];
        c.on_packet(SimTime::ZERO + SimDuration::from_millis(170), ep(2), reply_with(id, a2));
        let done = c.drain_done();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.as_ref().unwrap().assertions[0].value, "new");
        assert_eq!(c.pending_count(), 0);
    }

    #[test]
    fn cache_serves_repeated_gets_within_ttl() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100))
            .with_cache_ttl(SimDuration::from_secs(5));
        let uri = Uri::process(9);
        let id = c.get(SimTime::ZERO, &uri);
        assert_eq!(c.drain_sends().len(), 1);
        c.on_packet(SimTime::ZERO, ep(1), reply_with(id, vec![Assertion::new("k", "v")]));
        c.drain_done();
        // Second get: no wire traffic, immediate completion.
        let id2 = c.get(SimTime::ZERO + SimDuration::from_millis(10), &uri);
        assert!(c.drain_sends().is_empty(), "cache hit must not transmit");
        let done = c.drain_done();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id2);
        assert_eq!(done[0].1.as_ref().unwrap().assertions[0].value, "v");
        assert_eq!(c.stats().cache_hits, 1);
        // Past the TTL the next get goes back to the wire.
        let _id3 = c.get(SimTime::ZERO + SimDuration::from_secs(6), &uri);
        assert_eq!(c.drain_sends().len(), 1);
        assert_eq!(c.stats().cache_misses, 2);
    }

    #[test]
    fn writes_invalidate_the_cache() {
        let mut c = RcClient::new(vec![ep(1)], SimDuration::from_millis(100))
            .with_cache_ttl(SimDuration::from_secs(5));
        let uri = Uri::process(9);
        let id = c.get(SimTime::ZERO, &uri);
        c.on_packet(SimTime::ZERO, ep(1), reply_with(id, vec![Assertion::new("k", "v")]));
        c.drain_done();
        c.put(SimTime::ZERO, &uri, vec![Assertion::new("k", "v2")]);
        assert_eq!(c.stats().cache_invalidations, 1);
        // The next get must go to the wire, not the stale cache.
        c.drain_sends();
        let _ = c.get(SimTime::ZERO + SimDuration::from_millis(1), &uri);
        assert_eq!(c.drain_sends().len(), 1);
    }

    #[test]
    fn shard_map_routes_to_owning_group() {
        use crate::shard::ShardMap;
        let g0 = vec![ep(10), ep(11)];
        let g1 = vec![ep(20), ep(21)];
        let map = ShardMap::new(vec![g0.clone(), g1.clone()]);
        let mut c = RcClient::new(vec![ep(10), ep(20)], SimDuration::from_millis(100))
            .with_shard_map(map.clone());
        for i in 0..20u64 {
            let uri = Uri::process(i);
            c.get(SimTime::ZERO, &uri);
            let sends = c.drain_sends();
            let owner = map.shard_of(uri.as_str());
            let group: &[Endpoint] = if owner == 0 { &g0 } else { &g1 };
            assert!(
                group.contains(&sends[0].0),
                "uri {uri:?} (shard {owner}) routed to {:?}",
                sends[0].0
            );
        }
    }
}
