//! # snipe-rcds — the Resource Cataloging and Distribution System
//!
//! SNIPE stores *all* shared system state — host descriptors, process
//! locations, notify lists, multicast router sets, file replica
//! locations, public keys — as metadata in replicated RC servers
//! (paper §2.1, §3.1, §5.2). "RCDS accomplishes this by replicating the
//! resources and metadata at a potentially large number of locations"
//! with a "true master-master update data model" (§7).
//!
//! This crate implements:
//!
//! * [`uri`] — the global name space: URLs, URNs and LIFNs;
//! * [`assertion`] — `name=value` assertions with automatic
//!   timestamping and last-writer-wins merge (availability over strict
//!   serializability, per the §2.1 consistency discussion);
//! * [`store`] — the replicated catalog with per-origin update logs and
//!   version vectors;
//! * [`server`] — the RC server actor: client RPC plus pairwise
//!   anti-entropy between replicas;
//! * [`client`] — the sans-IO client used by every SNIPE component,
//!   with replica failover, a TTL lookup cache and shard routing;
//! * [`shard`] — consistent-hash sharding of the URI namespace across
//!   replica groups (ROADMAP open item 2).

pub mod assertion;
pub mod client;
pub mod proto;
pub mod server;
pub mod shard;
pub mod store;
pub mod uri;

pub use assertion::{Assertion, Stamp};
pub use client::{RcClient, RcClientStats};
pub use server::RcServerActor;
pub use shard::ShardMap;
pub use store::RcStore;
pub use uri::Uri;
