//! RC client/server RPC and replica synchronization messages.
//!
//! RC traffic rides raw (unreliable) datagrams; the client retries with
//! replica failover and the anti-entropy exchange is periodic and
//! idempotent, so datagram loss only delays convergence. (The 1998
//! implementation used SUN RPC, §6 — the same at-least-once shape.)

use snipe_util::codec::{decode_seq, encode_seq, Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};

use crate::assertion::Assertion;
use crate::store::{
    decode_updates, decode_vector, encode_updates, encode_vector, Update, VersionVector,
};

/// Operations a client can request.
#[derive(Clone, Debug, PartialEq)]
pub enum RcOp {
    /// Fetch all live assertions for a URI.
    Get(String),
    /// Publish assertions about a URI (server assigns stamps).
    Put(String, Vec<Assertion>),
    /// Tombstone one attribute of a URI.
    Delete(String, String),
    /// Find URIs by exact attribute match.
    Find(String, String),
}

/// Wire messages of the RC protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum RcMsg {
    /// Client request.
    Request {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// The operation.
        op: RcOp,
    },
    /// Server response.
    Response {
        /// Echoed request id.
        id: u64,
        /// Operation accepted?
        ok: bool,
        /// Assertions (Get) — with server-assigned stamps (Put).
        assertions: Vec<Assertion>,
        /// URIs (Find).
        uris: Vec<String>,
    },
    /// Replica → replica: "push me what I lack" (sender's vector).
    SyncReq {
        /// Sender's version vector.
        vector: VersionVector,
    },
    /// Replica → replica: updates the peer lacked.
    SyncPush {
        /// The updates.
        updates: Vec<Update>,
        /// True if the batch was truncated (ask again).
        more: bool,
    },
}

/// Protocol magic: distinguishes RC traffic from other Raw-sealed
/// protocols sharing a port.
const MAGIC: u8 = 0xA1;

const TAG_REQUEST: u8 = 1;
const TAG_RESPONSE: u8 = 2;
const TAG_SYNC_REQ: u8 = 3;
const TAG_SYNC_PUSH: u8 = 4;

const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_FIND: u8 = 4;

impl WireEncode for RcMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MAGIC);
        match self {
            RcMsg::Request { id, op } => {
                enc.put_u8(TAG_REQUEST);
                enc.put_u64(*id);
                match op {
                    RcOp::Get(uri) => {
                        enc.put_u8(OP_GET);
                        enc.put_str(uri);
                    }
                    RcOp::Put(uri, asserts) => {
                        enc.put_u8(OP_PUT);
                        enc.put_str(uri);
                        encode_seq(enc, asserts.iter());
                    }
                    RcOp::Delete(uri, name) => {
                        enc.put_u8(OP_DELETE);
                        enc.put_str(uri);
                        enc.put_str(name);
                    }
                    RcOp::Find(name, value) => {
                        enc.put_u8(OP_FIND);
                        enc.put_str(name);
                        enc.put_str(value);
                    }
                }
            }
            RcMsg::Response { id, ok, assertions, uris } => {
                enc.put_u8(TAG_RESPONSE);
                enc.put_u64(*id);
                enc.put_bool(*ok);
                encode_seq(enc, assertions.iter());
                encode_seq(enc, uris.iter());
            }
            RcMsg::SyncReq { vector } => {
                enc.put_u8(TAG_SYNC_REQ);
                encode_vector(enc, vector);
            }
            RcMsg::SyncPush { updates, more } => {
                enc.put_u8(TAG_SYNC_PUSH);
                encode_updates(enc, updates);
                enc.put_bool(*more);
            }
        }
    }
}

impl WireDecode for RcMsg {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        if dec.get_u8()? != MAGIC {
            return Err(SnipeError::Codec("not an RC message".into()));
        }
        Ok(match dec.get_u8()? {
            TAG_REQUEST => {
                let id = dec.get_u64()?;
                let op = match dec.get_u8()? {
                    OP_GET => RcOp::Get(dec.get_str()?),
                    OP_PUT => RcOp::Put(dec.get_str()?, decode_seq(dec)?),
                    OP_DELETE => RcOp::Delete(dec.get_str()?, dec.get_str()?),
                    OP_FIND => RcOp::Find(dec.get_str()?, dec.get_str()?),
                    o => return Err(SnipeError::Codec(format!("unknown RC op {o}"))),
                };
                RcMsg::Request { id, op }
            }
            TAG_RESPONSE => RcMsg::Response {
                id: dec.get_u64()?,
                ok: dec.get_bool()?,
                assertions: decode_seq(dec)?,
                uris: decode_seq(dec)?,
            },
            TAG_SYNC_REQ => RcMsg::SyncReq { vector: decode_vector(dec)? },
            TAG_SYNC_PUSH => {
                RcMsg::SyncPush { updates: decode_updates(dec)?, more: dec.get_bool()? }
            }
            t => return Err(SnipeError::Codec(format!("unknown RC tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::Stamp;

    #[test]
    fn all_variants_round_trip() {
        let mut a = Assertion::new("k", "v");
        a.stamp = Stamp { lamport: 3, server: 1 };
        let msgs = vec![
            RcMsg::Request { id: 1, op: RcOp::Get("urn:x".into()) },
            RcMsg::Request { id: 2, op: RcOp::Put("urn:x".into(), vec![a.clone()]) },
            RcMsg::Request { id: 3, op: RcOp::Delete("urn:x".into(), "k".into()) },
            RcMsg::Request { id: 4, op: RcOp::Find("k".into(), "v".into()) },
            RcMsg::Response {
                id: 1,
                ok: true,
                assertions: vec![a.clone()],
                uris: vec!["urn:y".into()],
            },
            RcMsg::SyncReq { vector: [(1u64, 5u64)].into_iter().collect() },
            RcMsg::SyncPush {
                updates: vec![crate::store::Update {
                    origin: 1,
                    seq: 0,
                    uri: "urn:x".into(),
                    assertion: a,
                }],
                more: true,
            },
        ];
        for m in msgs {
            let back = RcMsg::decode_from_bytes(m.encode_to_bytes()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(RcMsg::decode_from_bytes(bytes::Bytes::from_static(&[9, 9, 9])).is_err());
    }
}
