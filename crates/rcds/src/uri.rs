//! The global name space.
//!
//! "Because RCDS resources are named by URLs or URNs, SNIPE processes
//! and their metadata are addressable using a widely-deployed global
//! name space" (§3.1). Three syntaxes appear in the paper:
//!
//! * **URLs** — locations, e.g. `snipe://ajax.cs.utk.edu/` for a host;
//! * **URNs** — location-independent names, e.g. `urn:snipe:proc:42`;
//! * **LIFNs** — Location-Independent File Names for replicated files
//!   and multi-location services (§5.7), e.g. `lifn:snipe:ckpt-7`.

use std::fmt;

use snipe_util::error::{SnipeError, SnipeResult};

/// A validated URI (URL, URN or LIFN).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uri(String);

impl Uri {
    /// Parse and validate. Accepts `scheme:rest` where scheme is
    /// alphanumeric and rest is non-empty printable ASCII.
    pub fn parse(s: impl Into<String>) -> SnipeResult<Uri> {
        let s = s.into();
        let Some(colon) = s.find(':') else {
            return Err(SnipeError::Invalid(format!("URI without scheme: {s}")));
        };
        let (scheme, rest) = s.split_at(colon);
        if scheme.is_empty()
            || !scheme.chars().all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-')
        {
            return Err(SnipeError::Invalid(format!("bad URI scheme: {s}")));
        }
        if rest.len() <= 1 || !rest.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
            return Err(SnipeError::Invalid(format!("bad URI body: {s}")));
        }
        Ok(Uri(s))
    }

    /// The scheme (before the first colon).
    pub fn scheme(&self) -> &str {
        &self.0[..self.0.find(':').expect("validated")]
    }

    /// The full string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Is this a URN (location-independent name)?
    pub fn is_urn(&self) -> bool {
        self.scheme() == "urn"
    }

    /// Is this a LIFN?
    pub fn is_lifn(&self) -> bool {
        self.scheme() == "lifn"
    }

    // ---- canonical SNIPE name constructors ----

    /// The distinguished URL for a host (§5.2.1).
    pub fn host(hostname: &str) -> Uri {
        Uri(format!("snipe://{hostname}/"))
    }

    /// The distinguished URN for a process (§5.2.3).
    pub fn process(proc_id: u64) -> Uri {
        Uri(format!("urn:snipe:proc:{proc_id}"))
    }

    /// The URN of a multicast group (§5.2.4).
    pub fn mcast_group(name: &str) -> Uri {
        Uri(format!("urn:snipe:mcast:{name}"))
    }

    /// The URI under which a group's *router set* is registered, keyed
    /// by the group's 64-bit wire id (what daemons and members share).
    pub fn mcast_group_wire(gid: u64) -> Uri {
        Uri(format!("urn:snipe:mcastgrp:{gid}"))
    }

    /// The LIFN of a replicated file (§5.9).
    pub fn file(name: &str) -> Uri {
        Uri(format!("lifn:snipe:file:{name}"))
    }

    /// The LIFN of a multi-location service (§5.7).
    pub fn service(name: &str) -> Uri {
        Uri(format!("lifn:snipe:service:{name}"))
    }

    /// The URN of a named user principal (§4).
    pub fn user(name: &str) -> Uri {
        Uri(format!("urn:snipe:user:{name}"))
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_valid_schemes() {
        for s in ["http://x.y/z", "urn:snipe:proc:1", "lifn:snipe:file:a", "snipe://h/"] {
            let u = Uri::parse(s).unwrap();
            assert_eq!(u.as_str(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "noscheme", ":", "a:", "sp ace:x", "urn:with space"] {
            assert!(Uri::parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn scheme_classification() {
        assert!(Uri::process(1).is_urn());
        assert!(!Uri::process(1).is_lifn());
        assert!(Uri::file("f").is_lifn());
        assert_eq!(Uri::host("ajax.cs.utk.edu").scheme(), "snipe");
    }

    #[test]
    fn constructors_are_parseable_and_distinct() {
        let all = [
            Uri::host("h"),
            Uri::process(7),
            Uri::mcast_group("g"),
            Uri::file("f"),
            Uri::service("s"),
            Uri::user("u"),
        ];
        for u in &all {
            assert!(Uri::parse(u.as_str()).is_ok());
        }
        let mut strings: Vec<&str> = all.iter().map(|u| u.as_str()).collect();
        strings.sort_unstable();
        strings.dedup();
        assert_eq!(strings.len(), all.len());
    }

    #[test]
    fn display_and_ordering() {
        let a = Uri::process(1);
        let b = Uri::process(2);
        assert!(a < b);
        assert_eq!(format!("{a}"), "urn:snipe:proc:1");
    }
}
