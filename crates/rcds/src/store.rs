//! The replicated catalog: per-URI assertion sets plus the update log
//! and version vector that drive anti-entropy.
//!
//! Every accepted write becomes an [`Update`] stamped `(origin, seq)`;
//! replicas exchange version vectors and push the updates the other
//! side has not seen. Applying an update is idempotent and commutative
//! (last-writer-wins on [`Stamp`]), so replicas converge regardless of
//! delivery order — the availability-first consistency model §2.1
//! argues for.

use std::collections::{BTreeMap, HashMap};

use snipe_util::codec::{decode_seq, encode_seq, Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};

use crate::assertion::{Assertion, Stamp};
use crate::uri::Uri;

/// One replicated write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Update {
    /// Server that accepted the write.
    pub origin: u64,
    /// Per-origin sequence number.
    pub seq: u64,
    /// Resource the assertion is about.
    pub uri: String,
    /// The stamped assertion (may be a tombstone).
    pub assertion: Assertion,
}

impl WireEncode for Update {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.origin);
        enc.put_u64(self.seq);
        enc.put_str(&self.uri);
        self.assertion.encode(enc);
    }
}

impl WireDecode for Update {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        Ok(Update {
            origin: dec.get_u64()?,
            seq: dec.get_u64()?,
            uri: dec.get_str()?,
            assertion: Assertion::decode(dec)?,
        })
    }
}

/// A version vector: highest contiguous sequence seen per origin.
pub type VersionVector = HashMap<u64, u64>;

/// One replica's state.
#[derive(Clone, Debug)]
pub struct RcStore {
    /// This server's id (used as stamp tie-break and update origin).
    server_id: u64,
    /// Lamport clock.
    lamport: u64,
    /// Next local sequence number.
    next_seq: u64,
    /// uri -> name -> assertion (live and tombstoned).
    data: HashMap<String, HashMap<String, Assertion>>,
    /// All updates known, by (origin, seq) — the anti-entropy log.
    log: BTreeMap<(u64, u64), Update>,
    /// Highest seq seen per origin.
    vector: VersionVector,
}

impl RcStore {
    /// A fresh replica.
    pub fn new(server_id: u64) -> RcStore {
        RcStore {
            server_id,
            lamport: 0,
            next_seq: 0,
            data: HashMap::new(),
            log: BTreeMap::new(),
            vector: VersionVector::new(),
        }
    }

    /// This replica's id.
    pub fn server_id(&self) -> u64 {
        self.server_id
    }

    /// Accept a local write: stamp it, log it, apply it. Returns the
    /// stored assertion (with its assigned stamp).
    pub fn put(&mut self, uri: &Uri, mut assertion: Assertion, now_ns: u64) -> Assertion {
        self.lamport += 1;
        assertion.stamp = Stamp { lamport: self.lamport, server: self.server_id };
        assertion.stored_at_ns = now_ns;
        let update = Update {
            origin: self.server_id,
            seq: self.next_seq,
            uri: uri.as_str().to_string(),
            assertion: assertion.clone(),
        };
        self.next_seq += 1;
        self.apply(update);
        assertion
    }

    /// Accept a local delete (tombstone) for `name` on `uri`.
    pub fn delete(&mut self, uri: &Uri, name: &str, now_ns: u64) {
        let mut a = Assertion::new(name, "");
        a.deleted = true;
        self.put(uri, a, now_ns);
    }

    /// Live assertions for a URI (tombstones filtered), sorted by name.
    pub fn get(&self, uri: &Uri) -> Vec<Assertion> {
        let mut v: Vec<Assertion> = self
            .data
            .get(uri.as_str())
            .map(|m| m.values().filter(|a| !a.deleted).cloned().collect())
            .unwrap_or_default();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// One live attribute value.
    pub fn get_one(&self, uri: &Uri, name: &str) -> Option<&Assertion> {
        self.data.get(uri.as_str()).and_then(|m| m.get(name)).filter(|a| !a.deleted)
    }

    /// All URIs with a live assertion whose name equals `name` and
    /// value equals `value` (simple exact-match query).
    pub fn find_by_attr(&self, name: &str, value: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .data
            .iter()
            .filter(|(_, m)| m.get(name).is_some_and(|a| !a.deleted && a.value == value))
            .map(|(u, _)| u.clone())
            .collect();
        v.sort();
        v
    }

    /// Apply one update (local or replicated). Idempotent.
    pub fn apply(&mut self, update: Update) {
        let key = (update.origin, update.seq);
        if self.log.contains_key(&key) {
            return;
        }
        // Lamport clock advance.
        if update.assertion.stamp.lamport > self.lamport {
            self.lamport = update.assertion.stamp.lamport;
        }
        let e = self.vector.entry(update.origin).or_insert(0);
        if update.seq + 1 > *e {
            *e = update.seq + 1;
        }
        let by_name = self.data.entry(update.uri.clone()).or_default();
        match by_name.get(&update.assertion.name) {
            Some(existing) if !update.assertion.supersedes(existing) => {}
            _ => {
                by_name.insert(update.assertion.name.clone(), update.assertion.clone());
            }
        }
        self.log.insert(key, update);
    }

    /// This replica's version vector.
    pub fn version_vector(&self) -> &VersionVector {
        &self.vector
    }

    /// Updates the peer (described by `their` vector) has not seen,
    /// capped at `limit` to bound datagram size.
    pub fn updates_since(&self, their: &VersionVector, limit: usize) -> Vec<Update> {
        let mut out = Vec::new();
        for (key, u) in &self.log {
            let (origin, seq) = *key;
            let have = their.get(&origin).copied().unwrap_or(0);
            if seq >= have {
                out.push(u.clone());
                if out.len() >= limit {
                    break;
                }
            }
        }
        out
    }

    /// Total updates logged (diagnostics).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Number of URIs with any assertion.
    pub fn uri_count(&self) -> usize {
        self.data.len()
    }
}

/// Encode a version vector.
pub fn encode_vector(enc: &mut Encoder, v: &VersionVector) {
    let mut entries: Vec<(u64, u64)> = v.iter().map(|(k, s)| (*k, *s)).collect();
    entries.sort_unstable();
    enc.put_u32(entries.len() as u32);
    for (k, s) in entries {
        enc.put_u64(k);
        enc.put_u64(s);
    }
}

/// Decode a version vector.
pub fn decode_vector(dec: &mut Decoder) -> SnipeResult<VersionVector> {
    let n = dec.get_u32()? as usize;
    // Each entry is 16 encoded bytes; a count beyond the remaining
    // payload is corrupt. Rejecting here keeps a hostile count from
    // sizing the allocation.
    if n > dec.remaining() / 16 {
        return Err(SnipeError::Codec(format!("vector length {n} exceeds payload")));
    }
    let mut v = VersionVector::with_capacity(n);
    for _ in 0..n {
        let k = dec.get_u64()?;
        let s = dec.get_u64()?;
        v.insert(k, s);
    }
    Ok(v)
}

/// Encode a batch of updates.
pub fn encode_updates(enc: &mut Encoder, ups: &[Update]) {
    encode_seq(enc, ups.iter());
}

/// Decode a batch of updates.
pub fn decode_updates(dec: &mut Decoder) -> SnipeResult<Vec<Update>> {
    decode_seq(dec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uri(i: u32) -> Uri {
        Uri::process(i as u64)
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = RcStore::new(1);
        s.put(&uri(1), Assertion::new("k", "v"), 100);
        let got = s.get(&uri(1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, "v");
        assert_eq!(got[0].stored_at_ns, 100);
        assert!(got[0].stamp.lamport > 0);
    }

    #[test]
    fn overwrite_takes_latest() {
        let mut s = RcStore::new(1);
        s.put(&uri(1), Assertion::new("k", "v1"), 0);
        s.put(&uri(1), Assertion::new("k", "v2"), 1);
        assert_eq!(s.get_one(&uri(1), "k").unwrap().value, "v2");
        assert_eq!(s.get(&uri(1)).len(), 1);
    }

    #[test]
    fn delete_tombstones() {
        let mut s = RcStore::new(1);
        s.put(&uri(1), Assertion::new("k", "v"), 0);
        s.delete(&uri(1), "k", 1);
        assert!(s.get(&uri(1)).is_empty());
        assert!(s.get_one(&uri(1), "k").is_none());
    }

    #[test]
    fn find_by_attr() {
        let mut s = RcStore::new(1);
        s.put(&uri(1), Assertion::new("type", "host"), 0);
        s.put(&uri(2), Assertion::new("type", "host"), 0);
        s.put(&uri(3), Assertion::new("type", "proc"), 0);
        let hosts = s.find_by_attr("type", "host");
        assert_eq!(hosts.len(), 2);
    }

    #[test]
    fn two_replicas_converge_via_updates() {
        let mut a = RcStore::new(1);
        let mut b = RcStore::new(2);
        a.put(&uri(1), Assertion::new("x", "from-a"), 0);
        b.put(&uri(2), Assertion::new("y", "from-b"), 0);
        // Pull each way.
        for u in a.updates_since(b.version_vector(), 100) {
            b.apply(u);
        }
        for u in b.updates_since(a.version_vector(), 100) {
            a.apply(u);
        }
        assert_eq!(a.get_one(&uri(2), "y").unwrap().value, "from-b");
        assert_eq!(b.get_one(&uri(1), "x").unwrap().value, "from-a");
        assert_eq!(a.log_len(), b.log_len());
    }

    #[test]
    fn concurrent_writes_resolve_deterministically() {
        let mut a = RcStore::new(1);
        let mut b = RcStore::new(2);
        // Same lamport value on both: server id breaks the tie, so the
        // write accepted by the higher-id server wins everywhere.
        a.put(&uri(1), Assertion::new("k", "a-wins?"), 0);
        b.put(&uri(1), Assertion::new("k", "b-wins?"), 0);
        for u in a.updates_since(b.version_vector(), 100) {
            b.apply(u);
        }
        for u in b.updates_since(a.version_vector(), 100) {
            a.apply(u);
        }
        let va = a.get_one(&uri(1), "k").unwrap().value.clone();
        let vb = b.get_one(&uri(1), "k").unwrap().value.clone();
        assert_eq!(va, vb);
        assert_eq!(va, "b-wins?");
    }

    #[test]
    fn tombstone_beats_older_write_after_merge() {
        let mut a = RcStore::new(1);
        let mut b = RcStore::new(2);
        a.put(&uri(1), Assertion::new("k", "v"), 0);
        for u in a.updates_since(b.version_vector(), 100) {
            b.apply(u);
        }
        b.delete(&uri(1), "k", 1);
        for u in b.updates_since(a.version_vector(), 100) {
            a.apply(u);
        }
        assert!(a.get_one(&uri(1), "k").is_none());
    }

    #[test]
    fn apply_is_idempotent() {
        let mut a = RcStore::new(1);
        let mut b = RcStore::new(2);
        a.put(&uri(1), Assertion::new("k", "v"), 0);
        let ups = a.updates_since(b.version_vector(), 100);
        for u in &ups {
            b.apply(u.clone());
            b.apply(u.clone());
        }
        assert_eq!(b.log_len(), 1);
        assert_eq!(b.get(&uri(1)).len(), 1);
    }

    #[test]
    fn updates_since_respects_limit() {
        let mut a = RcStore::new(1);
        for i in 0..50 {
            a.put(&uri(i), Assertion::new("k", "v"), 0);
        }
        let ups = a.updates_since(&VersionVector::new(), 10);
        assert_eq!(ups.len(), 10);
    }

    #[test]
    fn three_replica_gossip_chain_converges() {
        let mut replicas = [RcStore::new(1), RcStore::new(2), RcStore::new(3)];
        replicas[0].put(&uri(1), Assertion::new("a", "1"), 0);
        replicas[1].put(&uri(2), Assertion::new("b", "2"), 0);
        replicas[2].put(&uri(3), Assertion::new("c", "3"), 0);
        // Ring gossip a few rounds.
        for _ in 0..3 {
            for i in 0..3 {
                let j = (i + 1) % 3;
                let ups = replicas[i].updates_since(replicas[j].version_vector(), 100);
                for u in ups {
                    replicas[j].apply(u);
                }
            }
        }
        for r in &replicas {
            assert_eq!(r.uri_count(), 3, "server {} missing data", r.server_id());
            assert_eq!(r.log_len(), 3);
        }
    }

    #[test]
    fn vector_codec_round_trip() {
        let mut v = VersionVector::new();
        v.insert(1, 5);
        v.insert(9, 2);
        let mut e = Encoder::new();
        encode_vector(&mut e, &v);
        let mut d = Decoder::new(e.finish());
        let back = decode_vector(&mut d).unwrap();
        assert_eq!(back, v);
    }
}
