//! The RC / metadata server actor.
//!
//! Each server is one replica of the catalog. It answers client RPCs
//! and runs pairwise anti-entropy with its peer replicas: every
//! `sync_interval` it asks one (deterministically random) peer to push
//! the updates it lacks. Because [`crate::store::RcStore::apply`] is
//! idempotent and commutative, replicas converge regardless of loss,
//! reordering or crash/recovery — host state survives crashes as the
//! paper's disk-backed servers did.

use snipe_netsim::actor::{Event, PortableActor, SimCtx};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::time::SimDuration;
use snipe_wire::frame::{open, seal, Proto};

use crate::proto::{RcMsg, RcOp};
use crate::shard::ShardMap;
use crate::store::RcStore;
use crate::uri::Uri;

/// Timer token for the anti-entropy tick.
const TIMER_SYNC: u64 = 1;
/// Maximum updates per SyncPush datagram.
const PUSH_BATCH: usize = 64;
/// Byte budget for the updates in one SyncPush. Servers send raw
/// datagrams (no wire-layer fragmentation), so a push must fit the
/// path MTU with headroom for framing — on a busy catalog a
/// count-only batch silently exceeds 1500 bytes and every push is
/// dropped `TooBig`, wedging anti-entropy entirely.
const PUSH_BYTES: usize = 1100;

/// The RC server actor.
pub struct RcServerActor {
    store: RcStore,
    peers: Vec<Endpoint>,
    sync_interval: SimDuration,
    /// When set, this replica owns exactly one shard of the namespace:
    /// URI-addressed requests routed here by mistake are rejected (and
    /// counted) instead of being stored where anti-entropy would never
    /// reconcile them with the true owners.
    shard: Option<(ShardMap, usize)>,
    /// Served client requests (diagnostics).
    pub requests_served: u64,
    /// Anti-entropy rounds initiated.
    pub sync_rounds: u64,
    /// URI-addressed requests rejected for belonging to another shard.
    pub misrouted: u64,
    /// Datagrams on the RC port that failed to open/decode.
    pub decode_drops: u64,
}

impl RcServerActor {
    /// A replica with the given id and peer replica endpoints.
    pub fn new(server_id: u64, peers: Vec<Endpoint>, sync_interval: SimDuration) -> RcServerActor {
        RcServerActor {
            store: RcStore::new(server_id),
            peers,
            sync_interval,
            shard: None,
            requests_served: 0,
            sync_rounds: 0,
            misrouted: 0,
            decode_drops: 0,
        }
    }

    /// Declare this replica a member of shard `idx` of `map`. Peers
    /// should be the other replicas of the *same* group so anti-entropy
    /// stays within the shard.
    pub fn with_shard(mut self, map: ShardMap, idx: usize) -> RcServerActor {
        self.shard = Some((map, idx));
        self
    }

    /// Read access to the replica state (tests/experiments).
    pub fn store(&self) -> &RcStore {
        &self.store
    }

    /// Pre-load an assertion before the world starts (bootstrap data
    /// such as host descriptors).
    pub fn preload(&mut self, uri: &Uri, assertion: crate::assertion::Assertion) {
        self.store.put(uri, assertion, 0);
    }

    fn send(&self, ctx: &mut dyn SimCtx, to: Endpoint, msg: &RcMsg) {
        ctx.send(to, seal(Proto::Raw, msg.encode_to_bytes()));
    }

    /// Does a URI-addressed op belong to this replica's shard? `Find`
    /// scans the local shard only (callers fan out across groups).
    fn owns(&mut self, op: &RcOp) -> bool {
        let Some((map, idx)) = &self.shard else {
            return true;
        };
        let uri = match op {
            RcOp::Get(u) | RcOp::Put(u, _) | RcOp::Delete(u, _) => u.as_str(),
            RcOp::Find(..) => return true,
        };
        if map.shard_of(uri) == *idx {
            true
        } else {
            self.misrouted += 1;
            false
        }
    }

    fn handle_request(&mut self, ctx: &mut dyn SimCtx, from: Endpoint, id: u64, op: RcOp) {
        self.requests_served += 1;
        if !self.owns(&op) {
            let resp = RcMsg::Response { id, ok: false, assertions: vec![], uris: vec![] };
            self.send(ctx, from, &resp);
            return;
        }
        let now_ns = ctx.now().as_nanos();
        let resp = match op {
            RcOp::Get(uri) => match Uri::parse(uri) {
                Ok(u) => {
                    RcMsg::Response { id, ok: true, assertions: self.store.get(&u), uris: vec![] }
                }
                Err(_) => RcMsg::Response { id, ok: false, assertions: vec![], uris: vec![] },
            },
            RcOp::Put(uri, asserts) => match Uri::parse(uri) {
                Ok(u) => {
                    let stored: Vec<_> =
                        asserts.into_iter().map(|a| self.store.put(&u, a, now_ns)).collect();
                    RcMsg::Response { id, ok: true, assertions: stored, uris: vec![] }
                }
                Err(_) => RcMsg::Response { id, ok: false, assertions: vec![], uris: vec![] },
            },
            RcOp::Delete(uri, name) => match Uri::parse(uri) {
                Ok(u) => {
                    self.store.delete(&u, &name, now_ns);
                    RcMsg::Response { id, ok: true, assertions: vec![], uris: vec![] }
                }
                Err(_) => RcMsg::Response { id, ok: false, assertions: vec![], uris: vec![] },
            },
            RcOp::Find(name, value) => RcMsg::Response {
                id,
                ok: true,
                assertions: vec![],
                uris: self.store.find_by_attr(&name, &value),
            },
        };
        self.send(ctx, from, &resp);
    }

    fn arm_timer(&self, ctx: &mut dyn SimCtx) {
        if !self.peers.is_empty() {
            ctx.set_timer(self.sync_interval, TIMER_SYNC);
        }
    }
}

impl PortableActor for RcServerActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start | Event::HostUp => self.arm_timer(ctx),
            Event::Timer { token: TIMER_SYNC } => {
                self.sync_rounds += 1;
                let peers: Vec<Endpoint> =
                    self.peers.iter().copied().filter(|p| p.host != ctx.host()).collect();
                if let Some(&peer) = ctx.rng().choose(&peers) {
                    let msg = RcMsg::SyncReq { vector: self.store.version_vector().clone() };
                    self.send(ctx, peer, &msg);
                }
                self.arm_timer(ctx);
            }
            Event::Timer { .. } => {}
            Event::Packet { from, payload } => {
                let Ok((Proto::Raw, body)) = open(payload) else {
                    self.decode_drops += 1; // not RC traffic
                    return;
                };
                let Ok(msg) = RcMsg::decode_from_bytes(body) else {
                    self.decode_drops += 1;
                    return;
                };
                match msg {
                    RcMsg::Request { id, op } => self.handle_request(ctx, from, id, op),
                    RcMsg::SyncReq { vector } => {
                        let candidates = self.store.updates_since(&vector, PUSH_BATCH);
                        let total = candidates.len();
                        // Pack updates up to the byte budget; the
                        // `more` flag makes the peer re-request
                        // immediately, so a large backlog drains in a
                        // burst of MTU-sized pushes instead of one
                        // undeliverable datagram.
                        let mut updates = Vec::new();
                        let mut budget = PUSH_BYTES;
                        for u in candidates {
                            let mut e = snipe_util::codec::Encoder::new();
                            u.encode(&mut e);
                            let sz = e.finish().len();
                            if !updates.is_empty() && sz > budget {
                                break;
                            }
                            budget = budget.saturating_sub(sz);
                            updates.push(u);
                        }
                        let more = updates.len() < total || total == PUSH_BATCH;
                        if !updates.is_empty() {
                            self.send(ctx, from, &RcMsg::SyncPush { updates, more });
                        }
                    }
                    RcMsg::SyncPush { updates, more } => {
                        for u in updates {
                            self.store.apply(u);
                        }
                        if more {
                            // Keep draining the peer without waiting a round.
                            let msg =
                                RcMsg::SyncReq { vector: self.store.version_vector().clone() };
                            self.send(ctx, from, &msg);
                        }
                    }
                    RcMsg::Response { .. } => {}
                }
            }
            Event::HostDown | Event::Signal { .. } => {}
        }
    }
}

portable_actor!(RcServerActor);
