//! The multicast router actor hosted by an elected daemon (§5.4).
//!
//! Pure relay: it wraps [`snipe_wire::mcast::McastRouter`] and turns
//! its outputs into simulator sends. State (membership, peer set,
//! dedup) lives in the wire-layer state machine so it is unit-testable
//! without a world.

use snipe_netsim::actor::{Event, PortableActor, SimCtx};
use snipe_netsim::portable_actor;
use snipe_wire::frame::{open, Proto};
use snipe_wire::mcast::{McastMsg, McastRouter};
use snipe_wire::Out;

/// The router actor.
#[derive(Default)]
pub struct McastRouterActor {
    state: McastRouter,
}

impl McastRouterActor {
    /// Fresh router.
    pub fn new() -> McastRouterActor {
        McastRouterActor::default()
    }

    /// Relay statistics: (relayed, duplicates).
    pub fn stats(&self) -> (u64, u64) {
        (self.state.relayed, self.state.duplicates)
    }
}

impl PortableActor for McastRouterActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        if let Event::Packet { payload, .. } = event {
            let Ok((Proto::Mcast, body)) = open(payload) else {
                return;
            };
            let Ok(msg) = McastMsg::decode(body) else {
                return;
            };
            let mut outs = Vec::new();
            self.state.on_message(msg, &mut outs);
            for o in outs {
                if let Out::Send { to, bytes, .. } = o {
                    // Do not loop a relay back to ourselves.
                    if to != ctx.me() {
                        ctx.send(to, bytes);
                    }
                }
            }
        }
    }
}

portable_actor!(McastRouterActor);
