//! The program registry: what a daemon can spawn.
//!
//! The 1997 daemon exec'd program images from disk (or mobile code via
//! a playground). In the simulator a "program image" is a factory
//! closure producing a [`PortableActor`] from its argument bytes. The
//! registry is shared by all daemons of one world — the moral
//! equivalent of a shared filesystem of binaries — and `Send + Sync`,
//! because those daemons may be hosted on different shards of a
//! [`snipe_netsim::shard::ShardedWorld`].

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use bytes::Bytes;

use snipe_netsim::actor::PortableActor;
use snipe_util::error::SnipeResult;

/// Everything a program factory learns at spawn time.
#[derive(Clone, Debug)]
pub struct SpawnCtx {
    /// Opaque argument bytes from the spawn request.
    pub args: Bytes,
    /// The globally unique process key the daemon assigned (or the
    /// fixed key a migrating process carried with it).
    pub proc_key: u64,
}

/// Factory signature: spawn context → a fresh process actor, or an
/// error when the spawn arguments are unusable (e.g. a corrupt
/// migration payload arriving over a chaotic wire). Factories must
/// never panic on hostile argument bytes.
pub type ProgramFactory =
    Box<dyn Fn(&SpawnCtx) -> SnipeResult<Box<dyn PortableActor>> + Send + Sync>;

/// A shared, name-indexed collection of spawnable programs.
#[derive(Clone, Default)]
pub struct ProgramRegistry {
    inner: Arc<RwLock<HashMap<String, Arc<ProgramFactory>>>>,
}

impl ProgramRegistry {
    /// Empty registry.
    pub fn new() -> ProgramRegistry {
        ProgramRegistry::default()
    }

    /// Register an infallible program under a name (overwrites). Most
    /// programs ignore their argument bytes or tolerate any value;
    /// those that parse them should use [`ProgramRegistry::register_fallible`].
    pub fn register(
        &self,
        name: impl Into<String>,
        factory: impl Fn(&SpawnCtx) -> Box<dyn PortableActor> + Send + Sync + 'static,
    ) {
        self.register_fallible(name, move |ctx| Ok(factory(ctx)));
    }

    /// Register a program whose factory can reject its spawn context.
    pub fn register_fallible(
        &self,
        name: impl Into<String>,
        factory: impl Fn(&SpawnCtx) -> SnipeResult<Box<dyn PortableActor>> + Send + Sync + 'static,
    ) {
        self.inner
            .write()
            .expect("registry poisoned")
            .insert(name.into(), Arc::new(Box::new(factory)));
    }

    /// Instantiate a program: `None` if unknown, `Some(Err)` if the
    /// factory rejected the spawn context.
    pub fn instantiate(
        &self,
        name: &str,
        ctx: &SpawnCtx,
    ) -> Option<SnipeResult<Box<dyn PortableActor>>> {
        let f = self.inner.read().expect("registry poisoned").get(name).cloned()?;
        Some(f(ctx))
    }

    /// Is a program registered?
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().expect("registry poisoned").contains_key(name)
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry poisoned").len()
    }

    /// True if no programs are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().expect("registry poisoned").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_netsim::actor::{Event, SimCtx};

    struct Nop;
    impl PortableActor for Nop {
        fn on_event(&mut self, _ctx: &mut dyn SimCtx, _event: Event) {}
    }

    #[test]
    fn register_and_instantiate() {
        let r = ProgramRegistry::new();
        assert!(r.is_empty());
        r.register("nop", |_| Box::new(Nop));
        assert!(r.contains("nop"));
        assert_eq!(r.len(), 1);
        let sctx = SpawnCtx { args: Bytes::new(), proc_key: 1 };
        assert!(r.instantiate("nop", &sctx).expect("registered").is_ok());
        assert!(r.instantiate("missing", &sctx).is_none());
    }

    #[test]
    fn fallible_factory_rejects_bad_args() {
        let r = ProgramRegistry::new();
        r.register_fallible("picky", |sctx| {
            if sctx.args.is_empty() {
                return Err(snipe_util::error::SnipeError::Codec("empty args".into()));
            }
            Ok(Box::new(Nop) as Box<dyn PortableActor>)
        });
        let bad = SpawnCtx { args: Bytes::new(), proc_key: 1 };
        let good = SpawnCtx { args: Bytes::from_static(b"x"), proc_key: 1 };
        assert!(r.instantiate("picky", &bad).expect("registered").is_err());
        assert!(r.instantiate("picky", &good).expect("registered").is_ok());
    }

    #[test]
    fn clones_share_state() {
        let r = ProgramRegistry::new();
        let r2 = r.clone();
        r.register("nop", |_| Box::new(Nop));
        assert!(r2.contains("nop"));
    }
}
