//! # snipe-daemon — the per-host SNIPE daemon
//!
//! "Each SNIPE daemon mediates the use of resources on its particular
//! host. SNIPE daemons are responsible for authenticating requests,
//! enforcing access restrictions, management of local tasks, delivery
//! of signals to local tasks, monitoring machine load and other local
//! resources, and name-to-address lookup of local tasks. Task
//! management includes starting local tasks when requested, monitoring
//! those tasks for state changes and quota violations, and informing
//! interested parties of changes to the status of those tasks" (§3.3).
//!
//! Daemons also "elect themselves as multicast routers on a per-group
//! basis" (§5.4) — see [`router`] and the election logic in
//! [`daemon::DaemonActor`].

pub mod daemon;
pub mod proto;
pub mod registry;
pub mod router;

pub use daemon::{DaemonActor, DaemonConfig};
pub use proto::{DaemonMsg, SpawnSpec, TaskState};
pub use registry::{ProgramRegistry, SpawnCtx};
pub use router::McastRouterActor;
