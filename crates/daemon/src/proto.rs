//! Daemon control protocol messages.

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::id::HostId;

/// Task lifecycle states the daemon reports (§3.3: "exit, suspend,
/// checkpoint").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskState {
    /// Running normally.
    Running,
    /// Suspended by a resource manager.
    Suspended,
    /// Checkpointed (state captured).
    Checkpointed,
    /// Exited.
    Exited,
    /// Lost to a host crash.
    Crashed,
}

impl TaskState {
    fn tag(self) -> u8 {
        match self {
            TaskState::Running => 1,
            TaskState::Suspended => 2,
            TaskState::Checkpointed => 3,
            TaskState::Exited => 4,
            TaskState::Crashed => 5,
        }
    }

    fn from_tag(t: u8) -> SnipeResult<TaskState> {
        Ok(match t {
            1 => TaskState::Running,
            2 => TaskState::Suspended,
            3 => TaskState::Checkpointed,
            4 => TaskState::Exited,
            5 => TaskState::Crashed,
            o => return Err(SnipeError::Codec(format!("bad task state {o}"))),
        })
    }

    /// RC metadata value.
    pub fn as_str(self) -> &'static str {
        match self {
            TaskState::Running => "running",
            TaskState::Suspended => "suspended",
            TaskState::Checkpointed => "checkpointed",
            TaskState::Exited => "exited",
            TaskState::Crashed => "crashed",
        }
    }
}

/// What to run and under which constraints (§5.5: "a specification of
/// the program to be run and the environment which the program
/// requires").
#[derive(Clone, Debug, PartialEq)]
pub struct SpawnSpec {
    /// Registered program name.
    pub program: String,
    /// Opaque argument bytes handed to the program factory.
    pub args: Bytes,
    /// Environment requirements (matched by resource managers):
    /// minimum CPU factor.
    pub min_cpu_factor: f64,
    /// Required architecture tag (empty = any).
    pub arch: String,
    /// Endpoints to notify of task state changes (the "notify list").
    pub notify: Vec<Endpoint>,
    /// Optional credential (encoded certificate) authorizing the spawn.
    pub credential: Option<Bytes>,
    /// Keep this process key instead of assigning a new one (used by
    /// migration so the logical identity survives the move, §5.6).
    pub fixed_key: u64,
}

impl SpawnSpec {
    /// A spec with no constraints.
    pub fn program(name: impl Into<String>, args: Bytes) -> SpawnSpec {
        SpawnSpec {
            program: name.into(),
            args,
            min_cpu_factor: 0.0,
            arch: String::new(),
            notify: Vec::new(),
            credential: None,
            fixed_key: 0,
        }
    }
}

fn put_endpoint(enc: &mut Encoder, ep: Endpoint) {
    enc.put_u32(ep.host.0);
    enc.put_u16(ep.port);
}

fn get_endpoint(dec: &mut Decoder) -> SnipeResult<Endpoint> {
    Ok(Endpoint::new(HostId(dec.get_u32()?), dec.get_u16()?))
}

impl WireEncode for SpawnSpec {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.program);
        enc.put_bytes(&self.args);
        enc.put_f64(self.min_cpu_factor);
        enc.put_str(&self.arch);
        enc.put_u32(self.notify.len() as u32);
        for ep in &self.notify {
            put_endpoint(enc, *ep);
        }
        match &self.credential {
            None => enc.put_bool(false),
            Some(c) => {
                enc.put_bool(true);
                enc.put_bytes(c);
            }
        }
        enc.put_u64(self.fixed_key);
    }
}

impl WireDecode for SpawnSpec {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        let program = dec.get_str()?;
        let args = dec.get_bytes()?;
        let min_cpu_factor = dec.get_f64()?;
        let arch = dec.get_str()?;
        let n = dec.get_u32()? as usize;
        let mut notify = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            notify.push(get_endpoint(dec)?);
        }
        let credential = if dec.get_bool()? { Some(dec.get_bytes()?) } else { None };
        let fixed_key = dec.get_u64()?;
        Ok(SpawnSpec { program, args, min_cpu_factor, arch, notify, credential, fixed_key })
    }
}

/// Daemon control messages (Raw-sealed datagrams on the daemon port).
#[derive(Clone, Debug, PartialEq)]
pub enum DaemonMsg {
    /// Ask the daemon to start a task.
    SpawnReq {
        /// Request id echoed in the reply.
        req_id: u64,
        /// What to run.
        spec: SpawnSpec,
    },
    /// Spawn outcome.
    SpawnResp {
        /// Echoed id.
        req_id: u64,
        /// Success?
        ok: bool,
        /// The task's endpoint (valid when ok).
        endpoint: Endpoint,
        /// The task's globally unique process key (valid when ok).
        proc_key: u64,
        /// Failure reason (when !ok).
        error: String,
    },
    /// Kill a local task by port.
    Kill {
        /// Task port on this daemon's host.
        port: u16,
    },
    /// Deliver a signal to a local task.
    Signal {
        /// Task port.
        port: u16,
        /// Signal number.
        signum: u32,
    },
    /// A local task reports its own state change (exit, checkpoint...).
    TaskReport {
        /// Task port.
        port: u16,
        /// New state.
        state: TaskState,
    },
    /// Notification fanned out to the notify list.
    TaskEvent {
        /// The task's process key.
        proc_key: u64,
        /// New state.
        state: TaskState,
    },
    /// Ask the daemon to (maybe) become a multicast router for a group.
    ElectRouter {
        /// Group id (hash of the group URN).
        group: u64,
    },
    /// Reply: the router endpoint serving the group on this host.
    ElectResp {
        /// Group id.
        group: u64,
        /// Router endpoint (this host's router actor).
        router: Endpoint,
    },
    /// Add a watcher to a local task's notify list (§5.2.3).
    Watch {
        /// Task port.
        port: u16,
        /// Endpoint to notify of state changes.
        watcher: Endpoint,
    },
    /// Remove a task from this daemon's tables without reporting an
    /// exit — the migration handoff (§5.6). The daemon replies with
    /// [`DaemonMsg::DetachResp`].
    Detach {
        /// Task port.
        port: u16,
    },
    /// Reply to [`DaemonMsg::Detach`]: the task's notify list, to be
    /// carried to the new host.
    DetachResp {
        /// Task port.
        port: u16,
        /// The notify list the daemon held.
        notify: Vec<Endpoint>,
    },
}

/// Protocol magic for daemon traffic.
const MAGIC: u8 = 0xA2;

const T_SPAWN_REQ: u8 = 1;
const T_SPAWN_RESP: u8 = 2;
const T_KILL: u8 = 3;
const T_SIGNAL: u8 = 4;
const T_TASK_REPORT: u8 = 5;
const T_TASK_EVENT: u8 = 6;
const T_ELECT: u8 = 7;
const T_ELECT_RESP: u8 = 8;
const T_WATCH: u8 = 9;
const T_DETACH: u8 = 10;
const T_DETACH_RESP: u8 = 11;

impl WireEncode for DaemonMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MAGIC);
        match self {
            DaemonMsg::SpawnReq { req_id, spec } => {
                enc.put_u8(T_SPAWN_REQ);
                enc.put_u64(*req_id);
                spec.encode(enc);
            }
            DaemonMsg::SpawnResp { req_id, ok, endpoint, proc_key, error } => {
                enc.put_u8(T_SPAWN_RESP);
                enc.put_u64(*req_id);
                enc.put_bool(*ok);
                put_endpoint(enc, *endpoint);
                enc.put_u64(*proc_key);
                enc.put_str(error);
            }
            DaemonMsg::Kill { port } => {
                enc.put_u8(T_KILL);
                enc.put_u16(*port);
            }
            DaemonMsg::Signal { port, signum } => {
                enc.put_u8(T_SIGNAL);
                enc.put_u16(*port);
                enc.put_u32(*signum);
            }
            DaemonMsg::TaskReport { port, state } => {
                enc.put_u8(T_TASK_REPORT);
                enc.put_u16(*port);
                enc.put_u8(state.tag());
            }
            DaemonMsg::TaskEvent { proc_key, state } => {
                enc.put_u8(T_TASK_EVENT);
                enc.put_u64(*proc_key);
                enc.put_u8(state.tag());
            }
            DaemonMsg::ElectRouter { group } => {
                enc.put_u8(T_ELECT);
                enc.put_u64(*group);
            }
            DaemonMsg::ElectResp { group, router } => {
                enc.put_u8(T_ELECT_RESP);
                enc.put_u64(*group);
                put_endpoint(enc, *router);
            }
            DaemonMsg::Watch { port, watcher } => {
                enc.put_u8(T_WATCH);
                enc.put_u16(*port);
                put_endpoint(enc, *watcher);
            }
            DaemonMsg::Detach { port } => {
                enc.put_u8(T_DETACH);
                enc.put_u16(*port);
            }
            DaemonMsg::DetachResp { port, notify } => {
                enc.put_u8(T_DETACH_RESP);
                enc.put_u16(*port);
                enc.put_u32(notify.len() as u32);
                for ep in notify {
                    put_endpoint(enc, *ep);
                }
            }
        }
    }
}

impl WireDecode for DaemonMsg {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        if dec.get_u8()? != MAGIC {
            return Err(SnipeError::Codec("not a daemon message".into()));
        }
        Ok(match dec.get_u8()? {
            T_SPAWN_REQ => {
                DaemonMsg::SpawnReq { req_id: dec.get_u64()?, spec: SpawnSpec::decode(dec)? }
            }
            T_SPAWN_RESP => DaemonMsg::SpawnResp {
                req_id: dec.get_u64()?,
                ok: dec.get_bool()?,
                endpoint: get_endpoint(dec)?,
                proc_key: dec.get_u64()?,
                error: dec.get_str()?,
            },
            T_KILL => DaemonMsg::Kill { port: dec.get_u16()? },
            T_SIGNAL => DaemonMsg::Signal { port: dec.get_u16()?, signum: dec.get_u32()? },
            T_TASK_REPORT => DaemonMsg::TaskReport {
                port: dec.get_u16()?,
                state: TaskState::from_tag(dec.get_u8()?)?,
            },
            T_TASK_EVENT => DaemonMsg::TaskEvent {
                proc_key: dec.get_u64()?,
                state: TaskState::from_tag(dec.get_u8()?)?,
            },
            T_ELECT => DaemonMsg::ElectRouter { group: dec.get_u64()? },
            T_ELECT_RESP => {
                DaemonMsg::ElectResp { group: dec.get_u64()?, router: get_endpoint(dec)? }
            }
            T_WATCH => DaemonMsg::Watch { port: dec.get_u16()?, watcher: get_endpoint(dec)? },
            T_DETACH => DaemonMsg::Detach { port: dec.get_u16()? },
            T_DETACH_RESP => {
                let port = dec.get_u16()?;
                let n = dec.get_u32()? as usize;
                let mut notify = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    notify.push(get_endpoint(dec)?);
                }
                DaemonMsg::DetachResp { port, notify }
            }
            t => return Err(SnipeError::Codec(format!("unknown daemon tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_round_trip() {
        let spec = SpawnSpec {
            program: "worker".into(),
            args: Bytes::from_static(b"a"),
            min_cpu_factor: 1.5,
            arch: "sparc".into(),
            notify: vec![Endpoint::new(HostId(1), 2)],
            credential: Some(Bytes::from_static(b"cert")),
            fixed_key: 42,
        };
        let msgs = vec![
            DaemonMsg::SpawnReq { req_id: 1, spec },
            DaemonMsg::SpawnResp {
                req_id: 1,
                ok: true,
                endpoint: Endpoint::new(HostId(3), 100),
                proc_key: 77,
                error: String::new(),
            },
            DaemonMsg::Kill { port: 100 },
            DaemonMsg::Signal { port: 100, signum: 15 },
            DaemonMsg::TaskReport { port: 100, state: TaskState::Checkpointed },
            DaemonMsg::TaskEvent { proc_key: 7, state: TaskState::Exited },
            DaemonMsg::ElectRouter { group: 5 },
            DaemonMsg::ElectResp { group: 5, router: Endpoint::new(HostId(0), 5) },
            DaemonMsg::Watch { port: 100, watcher: Endpoint::new(HostId(2), 3) },
            DaemonMsg::Detach { port: 100 },
            DaemonMsg::DetachResp { port: 100, notify: vec![Endpoint::new(HostId(2), 3)] },
        ];
        for m in msgs {
            assert_eq!(DaemonMsg::decode_from_bytes(m.encode_to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn task_state_strings() {
        assert_eq!(TaskState::Running.as_str(), "running");
        assert_eq!(TaskState::Crashed.as_str(), "crashed");
    }

    #[test]
    fn bad_state_tag_rejected() {
        assert!(TaskState::from_tag(99).is_err());
    }
}
