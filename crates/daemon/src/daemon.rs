//! The per-host daemon actor.

use std::collections::HashMap;

use snipe_crypto::cert::{Certificate, TrustPurpose, TrustStore};
use snipe_netsim::actor::{Event, PortableActor, SimCtx, TimerGate};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_netsim::trace::{self, FaultOp, TraceKind};
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::uri::Uri;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::time::SimDuration;
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::mcast::McastMsg;
use snipe_wire::ports;

use crate::proto::{DaemonMsg, SpawnSpec, TaskState};
use crate::registry::ProgramRegistry;
use crate::router::McastRouterActor;

const TIMER_LOAD: u64 = 1;
const TIMER_RC: u64 = 2;

/// Daemon configuration.
#[derive(Clone)]
pub struct DaemonConfig {
    /// This host's name (for its distinguished URL).
    pub hostname: String,
    /// RC replica endpoints.
    pub rc_replicas: Vec<Endpoint>,
    /// How often to publish load metadata.
    pub load_interval: SimDuration,
    /// Architecture tag advertised in host metadata.
    pub arch: String,
    /// When set, spawn requests must carry a certificate issued by a
    /// key trusted for [`TrustPurpose::ResourceAuthorization`] (§4).
    pub trust: Option<TrustStore>,
}

impl DaemonConfig {
    /// Permissive defaults for a named host.
    pub fn new(hostname: impl Into<String>, rc_replicas: Vec<Endpoint>) -> DaemonConfig {
        DaemonConfig {
            hostname: hostname.into(),
            rc_replicas,
            load_interval: SimDuration::from_secs(5),
            arch: "sim64".into(),
            trust: None,
        }
    }
}

struct TaskInfo {
    proc_key: u64,
    state: TaskState,
    notify: Vec<Endpoint>,
}

/// The daemon actor (listens on [`ports::DAEMON`]).
pub struct DaemonActor {
    cfg: DaemonConfig,
    registry: ProgramRegistry,
    rc: RcClient,
    tasks: HashMap<u16, TaskInfo>,
    next_task_port: u16,
    next_local_key: u64,
    /// Groups this daemon routes (group id → router endpoint).
    routing: HashMap<u64, Endpoint>,
    /// Pending RC reads of group router sets: req id → group id.
    router_lookups: HashMap<u64, u64>,
    rc_gate: TimerGate,
    /// Spawns served (diagnostics).
    pub spawns: u64,
    /// Spawns rejected for authorization failures.
    pub rejected: u64,
}

impl DaemonActor {
    /// New daemon for a host.
    pub fn new(cfg: DaemonConfig, registry: ProgramRegistry) -> DaemonActor {
        let rc = RcClient::new(cfg.rc_replicas.clone(), SimDuration::from_millis(250));
        DaemonActor {
            cfg,
            registry,
            rc,
            tasks: HashMap::new(),
            next_task_port: ports::TASK_BASE,
            next_local_key: 1,
            routing: HashMap::new(),
            router_lookups: HashMap::new(),
            rc_gate: TimerGate::new(),
            spawns: 0,
            rejected: 0,
        }
    }

    /// Current task count (diagnostics).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    fn send_msg(&self, ctx: &mut dyn SimCtx, to: Endpoint, msg: &DaemonMsg) {
        ctx.send(to, seal(Proto::Raw, msg.encode_to_bytes()));
    }

    fn flush_rc(&mut self, ctx: &mut dyn SimCtx) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        let done = self.rc.drain_done();
        for (id, result) in done {
            let Some(group) = self.router_lookups.remove(&id) else {
                continue;
            };
            // §5.4: a router that adds itself "registers itself with
            // more than half of the other routers for that group" — we
            // peer with every existing router, both directions.
            let Some(&mine) = self.routing.get(&group) else {
                continue;
            };
            let Ok(reply) = result else { continue };
            for a in &reply.assertions {
                if !a.name.starts_with("router:") {
                    continue;
                }
                let Some((h, p)) = a.value.split_once(':') else {
                    continue;
                };
                let (Ok(h), Ok(p)) = (h.parse::<u32>(), p.parse::<u16>()) else {
                    continue;
                };
                let other = Endpoint::new(snipe_util::id::HostId(h), p);
                if other == mine {
                    continue;
                }
                let m1 = McastMsg::Peer { group, router: mine };
                ctx.send(other, seal(Proto::Mcast, m1.encode()));
                let m2 = McastMsg::Peer { group, router: other };
                ctx.send(mine, seal(Proto::Mcast, m2.encode()));
            }
        }
        if let Some(dl) = self.rc.next_deadline() {
            self.rc_gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_RC);
        }
    }

    fn publish_host_metadata(&mut self, ctx: &mut dyn SimCtx) {
        let uri = Uri::host(&self.cfg.hostname);
        let host = ctx.host();
        let topo = ctx.topology();
        let mut asserts = vec![
            Assertion::new("type", "host"),
            Assertion::new("arch", self.cfg.arch.clone()),
            Assertion::new("cpu-factor", format!("{}", topo.host(host).cpu_factor)),
            Assertion::new("daemon-endpoint", format!("{}:{}", host.0, ports::DAEMON)),
            Assertion::new("load", format!("{}", self.tasks.len())),
        ];
        for iface in &topo.host(host).interfaces {
            let net = topo.net(iface.net);
            asserts.push(Assertion::new(
                format!("interface:{}", net.name),
                format!("net={};bw={};up={}", iface.net.0, net.medium.bandwidth_bps, iface.up),
            ));
        }
        let now = ctx.now();
        self.rc.put(now, &uri, asserts);
        self.flush_rc(ctx);
    }

    fn authorize(&self, spec: &SpawnSpec) -> Result<(), String> {
        let Some(trust) = &self.cfg.trust else {
            return Ok(());
        };
        let Some(cred) = &spec.credential else {
            return Err("spawn requires a credential".into());
        };
        let cert = Certificate::decode_from_bytes(cred.clone())
            .map_err(|e| format!("bad credential: {e}"))?;
        trust
            .verify(TrustPurpose::ResourceAuthorization, &cert)
            .map_err(|e| format!("credential rejected: {e}"))?;
        // The certificate must name this host (or any-host "*").
        match cert.claim("allowed-hosts") {
            Some(hosts) if hosts == "*" || hosts.split(',').any(|h| h == self.cfg.hostname) => {
                Ok(())
            }
            Some(_) => Err("credential does not cover this host".into()),
            None => Err("credential lacks allowed-hosts claim".into()),
        }
    }

    fn handle_spawn(&mut self, ctx: &mut dyn SimCtx, from: Endpoint, req_id: u64, spec: SpawnSpec) {
        if let Err(error) = self.authorize(&spec) {
            self.rejected += 1;
            let resp = DaemonMsg::SpawnResp {
                req_id,
                ok: false,
                endpoint: Endpoint::new(ctx.host(), 0),
                proc_key: 0,
                error,
            };
            self.send_msg(ctx, from, &resp);
            return;
        }
        let proc_key = if spec.fixed_key != 0 {
            // Fixed-key spawns (migration) are idempotent: a duplicated
            // or retransmitted SpawnReq must not start a second
            // incarnation, it re-acks the one already running.
            if let Some((&port, _)) = self
                .tasks
                .iter()
                .find(|(_, t)| t.proc_key == spec.fixed_key && t.state == TaskState::Running)
            {
                let ep = Endpoint::new(ctx.host(), port);
                let resp = DaemonMsg::SpawnResp {
                    req_id,
                    ok: true,
                    endpoint: ep,
                    proc_key: spec.fixed_key,
                    error: String::new(),
                };
                self.send_msg(ctx, from, &resp);
                return;
            }
            spec.fixed_key
        } else {
            let k = ((ctx.host().0 as u64) << 32) | self.next_local_key;
            self.next_local_key += 1;
            k
        };
        let sctx = crate::registry::SpawnCtx { args: spec.args.clone(), proc_key };
        let actor = match self.registry.instantiate(&spec.program, &sctx) {
            Some(Ok(actor)) => actor,
            res => {
                let error = match res {
                    None => format!("unknown program {:?}", spec.program),
                    Some(Err(e)) => format!("program {:?} rejected spawn: {e}", spec.program),
                    Some(Ok(_)) => unreachable!(),
                };
                let resp = DaemonMsg::SpawnResp {
                    req_id,
                    ok: false,
                    endpoint: Endpoint::new(ctx.host(), 0),
                    proc_key: 0,
                    error,
                };
                self.send_msg(ctx, from, &resp);
                return;
            }
        };
        // Find a free task port.
        let mut port = self.next_task_port;
        while ctx.is_bound(Endpoint::new(ctx.host(), port)) {
            port = port.wrapping_add(1).max(ports::TASK_BASE);
        }
        self.next_task_port = port.wrapping_add(1).max(ports::TASK_BASE);
        let ep = ctx.spawn_portable(ctx.host(), port, actor).expect("port checked free");
        self.spawns += 1;
        if trace::enabled() {
            trace::record(
                ctx.now(),
                TraceKind::Fault {
                    op: FaultOp { what: "daemon_spawn", a: proc_key, b: port as u64 },
                },
            );
        }
        self.tasks.insert(
            ep.port,
            TaskInfo { proc_key, state: TaskState::Running, notify: spec.notify.clone() },
        );
        // Publish process metadata: "the new process globally visible"
        // (§5.5).
        let uri = Uri::process(proc_key);
        let now = ctx.now();
        self.rc.put(
            now,
            &uri,
            vec![
                Assertion::new("type", "process"),
                Assertion::new("comm-address", format!("{}:{}", ep.host.0, ep.port)),
                Assertion::new("host", self.cfg.hostname.clone()),
                Assertion::new("program", spec.program.clone()),
                Assertion::new("state", "running"),
            ],
        );
        self.flush_rc(ctx);
        let resp =
            DaemonMsg::SpawnResp { req_id, ok: true, endpoint: ep, proc_key, error: String::new() };
        self.send_msg(ctx, from, &resp);
    }

    fn broadcast_state(&mut self, ctx: &mut dyn SimCtx, port: u16, state: TaskState) {
        let Some(info) = self.tasks.get_mut(&port) else {
            return;
        };
        info.state = state;
        let proc_key = info.proc_key;
        let notify = info.notify.clone();
        // Update RC process state.
        let uri = Uri::process(proc_key);
        let now = ctx.now();
        self.rc.put(now, &uri, vec![Assertion::new("state", state.as_str().to_string())]);
        self.flush_rc(ctx);
        // Fan out to the notify list.
        for ep in notify {
            self.send_msg(ctx, ep, &DaemonMsg::TaskEvent { proc_key, state });
        }
        if matches!(state, TaskState::Exited | TaskState::Crashed) {
            if trace::enabled() {
                let what = match state {
                    TaskState::Crashed => "task_crashed",
                    _ => "task_exited",
                };
                trace::record(
                    ctx.now(),
                    TraceKind::Fault { op: FaultOp { what, a: proc_key, b: port as u64 } },
                );
            }
            self.tasks.remove(&port);
        }
    }

    fn elect_router(&mut self, ctx: &mut dyn SimCtx, from: Endpoint, group: u64) {
        let router_ep = if let Some(&ep) = self.routing.get(&group) {
            ep
        } else {
            // Spawn (or reuse) the router actor on the well-known port.
            let ep = Endpoint::new(ctx.host(), ports::MCAST_ROUTER);
            if !ctx.topology().host(ctx.host()).up {
                return;
            }
            let _ = ctx.spawn_portable(
                ctx.host(),
                ports::MCAST_ROUTER,
                Box::new(McastRouterActor::new()),
            );
            self.routing.insert(group, ep);
            // Register as a router for the group in RC metadata and peer
            // with already-registered routers (§5.2.4/§5.4).
            let uri = Uri::mcast_group_wire(group);
            let now = ctx.now();
            self.rc.put(
                now,
                &uri,
                vec![Assertion::new(
                    format!("router:{}:{}", ep.host.0, ep.port),
                    format!("{}:{}", ep.host.0, ep.port),
                )],
            );
            // Discover and peer with the routers that beat us here.
            let lookup = self.rc.get(now, &uri);
            self.router_lookups.insert(lookup, group);
            self.flush_rc(ctx);
            ep
        };
        self.send_msg(ctx, from, &DaemonMsg::ElectResp { group, router: router_ep });
    }
}

impl PortableActor for DaemonActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start => {
                self.publish_host_metadata(ctx);
                ctx.set_timer(self.cfg.load_interval, TIMER_LOAD);
            }
            Event::HostUp => {
                // Reboot: tasks died with the host.
                let ports_list: Vec<u16> = self.tasks.keys().copied().collect();
                for p in ports_list {
                    self.broadcast_state(ctx, p, TaskState::Crashed);
                }
                self.publish_host_metadata(ctx);
                ctx.set_timer(self.cfg.load_interval, TIMER_LOAD);
            }
            Event::HostDown => {}
            Event::Timer { token: TIMER_LOAD } => {
                self.publish_host_metadata(ctx);
                ctx.set_timer(self.cfg.load_interval, TIMER_LOAD);
            }
            Event::Timer { token: TIMER_RC } => {
                self.rc_gate.fired();
                self.rc.on_timer(ctx.now());
                self.flush_rc(ctx);
            }
            Event::Timer { .. } => {}
            Event::Signal { .. } => {}
            Event::Packet { from, payload } => {
                let Ok((proto, body)) = open(payload) else {
                    return;
                };
                match proto {
                    Proto::Raw => {
                        // Either an RC response or a daemon message.
                        if let Ok(msg) = DaemonMsg::decode_from_bytes(body.clone()) {
                            match msg {
                                DaemonMsg::SpawnReq { req_id, spec } => {
                                    self.handle_spawn(ctx, from, req_id, spec)
                                }
                                DaemonMsg::Kill { port } => {
                                    let ep = Endpoint::new(ctx.host(), port);
                                    ctx.kill(ep);
                                    self.broadcast_state(ctx, port, TaskState::Exited);
                                }
                                DaemonMsg::Signal { port, signum } => {
                                    let ep = Endpoint::new(ctx.host(), port);
                                    ctx.signal(ep, signum);
                                }
                                DaemonMsg::TaskReport { port, state } => {
                                    if matches!(state, TaskState::Exited) {
                                        let ep = Endpoint::new(ctx.host(), port);
                                        ctx.kill(ep);
                                    }
                                    self.broadcast_state(ctx, port, state);
                                }
                                DaemonMsg::ElectRouter { group } => {
                                    self.elect_router(ctx, from, group)
                                }
                                DaemonMsg::Watch { port, watcher } => {
                                    if let Some(t) = self.tasks.get_mut(&port) {
                                        if !t.notify.contains(&watcher) {
                                            t.notify.push(watcher);
                                        }
                                    }
                                }
                                DaemonMsg::Detach { port } => {
                                    let notify = self
                                        .tasks
                                        .remove(&port)
                                        .map(|t| t.notify)
                                        .unwrap_or_default();
                                    let resp = DaemonMsg::DetachResp { port, notify };
                                    self.send_msg(ctx, from, &resp);
                                }
                                DaemonMsg::SpawnResp { .. }
                                | DaemonMsg::TaskEvent { .. }
                                | DaemonMsg::ElectResp { .. }
                                | DaemonMsg::DetachResp { .. } => {}
                            }
                        } else {
                            self.rc.on_packet(ctx.now(), from, body);
                            self.flush_rc(ctx);
                        }
                    }
                    Proto::Mcast => {
                        // A join/data arriving at the daemon while no
                        // router exists here: forward to our router if
                        // we have one for the group.
                        if let Ok(McastMsg::Data { group, .. } | McastMsg::Join { group, .. }) =
                            McastMsg::decode(body.clone())
                        {
                            if let Some(&r) = self.routing.get(&group) {
                                ctx.send(r, seal(Proto::Mcast, body));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

portable_actor!(DaemonActor);
