//! Integration: daemons over the simulator — spawning, monitoring,
//! notify lists, authorization and multicast router election.

use bytes::Bytes;
use snipe_crypto::cert::{CertClaim, Certificate, TrustPurpose, TrustStore};
use snipe_crypto::sign::KeyPair;
use snipe_daemon::proto::{DaemonMsg, SpawnSpec, TaskState};
use snipe_daemon::registry::ProgramRegistry;
use snipe_daemon::{DaemonActor, DaemonConfig};
use snipe_netsim::actor::{Actor, Ctx, Event, PortableActor, SimCtx};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_rcds::server::RcServerActor;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::id::HostId;
use snipe_util::rng::Xoshiro256;
use snipe_util::time::SimDuration;
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::ports;
use std::sync::{Arc, Mutex};

/// A task that reports Exited to its local daemon after a delay.
struct ShortLived {
    lifetime: SimDuration,
}

impl PortableActor for ShortLived {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start => ctx.set_timer(self.lifetime, 1),
            Event::Timer { .. } => {
                let daemon = Endpoint::new(ctx.host(), ports::DAEMON);
                let me = ctx.me().port;
                let msg = DaemonMsg::TaskReport { port: me, state: TaskState::Exited };
                ctx.send(daemon, seal(Proto::Raw, msg.encode_to_bytes()));
            }
            _ => {}
        }
    }
}

/// Test driver: sends daemon messages from a script, records replies.
struct Driver {
    script: Vec<(SimDuration, Endpoint, DaemonMsg)>,
    log: Arc<Mutex<Vec<DaemonMsg>>>,
}

impl Actor for Driver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                if !self.script.is_empty() {
                    ctx.set_timer(self.script[0].0, 1);
                }
            }
            Event::Timer { .. } => {
                let (_, to, msg) = self.script.remove(0);
                ctx.send(to, seal(Proto::Raw, msg.encode_to_bytes()));
                if !self.script.is_empty() {
                    ctx.set_timer(self.script[0].0, 1);
                }
            }
            Event::Packet { payload, .. } => {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    if let Ok(msg) = DaemonMsg::decode_from_bytes(body) {
                        self.log.lock().unwrap().push(msg);
                    }
                }
            }
            _ => {}
        }
    }
}

fn world_with_daemon(
    registry: ProgramRegistry,
    trust: Option<TrustStore>,
) -> (World, HostId, HostId) {
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let rc_host = topo.add_host(HostCfg::named("rc0"));
    let worker = topo.add_host(HostCfg::named("worker"));
    let client = topo.add_host(HostCfg::named("client"));
    for h in [rc_host, worker, client] {
        topo.attach(h, net);
    }
    let mut world = World::new(topo, 7);
    world.spawn(
        rc_host,
        ports::RC_SERVER,
        Box::new(RcServerActor::new(1, vec![], SimDuration::from_millis(200))),
    );
    let mut cfg = DaemonConfig::new("worker", vec![Endpoint::new(rc_host, ports::RC_SERVER)]);
    cfg.trust = trust;
    world.spawn(worker, ports::DAEMON, Box::new(DaemonActor::new(cfg, registry)));
    (world, worker, client)
}

#[test]
fn spawn_runs_task_and_reports_exit_to_notify_list() {
    let registry = ProgramRegistry::new();
    registry
        .register("short", |_| Box::new(ShortLived { lifetime: SimDuration::from_millis(100) }));
    let (mut world, worker, client) = world_with_daemon(registry, None);
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver_ep = Endpoint::new(client, 40);
    let mut spec = SpawnSpec::program("short", Bytes::new());
    spec.notify = vec![driver_ep];
    let driver = Driver {
        script: vec![(
            SimDuration::from_millis(10),
            Endpoint::new(worker, ports::DAEMON),
            DaemonMsg::SpawnReq { req_id: 1, spec },
        )],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(1));
    let log = log.lock().unwrap();
    let resp = log
        .iter()
        .find_map(|m| match m {
            DaemonMsg::SpawnResp { ok, proc_key, .. } => Some((*ok, *proc_key)),
            _ => None,
        })
        .expect("spawn response");
    assert!(resp.0, "spawn must succeed");
    assert!(resp.1 > 0);
    let exited = log
        .iter()
        .any(|m| matches!(m, DaemonMsg::TaskEvent { state: TaskState::Exited, proc_key } if *proc_key == resp.1));
    assert!(exited, "notify list must hear about the exit: {log:?}");
}

#[test]
fn unknown_program_rejected() {
    let (mut world, worker, client) = world_with_daemon(ProgramRegistry::new(), None);
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = Driver {
        script: vec![(
            SimDuration::from_millis(10),
            Endpoint::new(worker, ports::DAEMON),
            DaemonMsg::SpawnReq { req_id: 9, spec: SpawnSpec::program("nope", Bytes::new()) },
        )],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_millis(500));
    let log = log.lock().unwrap();
    assert!(log.iter().any(|m| matches!(m, DaemonMsg::SpawnResp { req_id: 9, ok: false, .. })));
}

#[test]
fn authorization_enforced_when_trust_configured() {
    let mut rng = Xoshiro256::seed_from_u64(5);
    let rm_ca = KeyPair::generate_default(&mut rng);
    let user = KeyPair::generate_default(&mut rng);
    let mut trust = TrustStore::new();
    trust.trust(TrustPurpose::ResourceAuthorization, rm_ca.public.clone());

    let registry = ProgramRegistry::new();
    registry.register("short", |_| Box::new(ShortLived { lifetime: SimDuration::from_millis(50) }));
    let (mut world, worker, client) = world_with_daemon(registry, Some(trust));
    let log = Arc::new(Mutex::new(Vec::new()));

    // Unauthorized spawn (no credential).
    let bad = DaemonMsg::SpawnReq { req_id: 1, spec: SpawnSpec::program("short", Bytes::new()) };
    // Authorized spawn: certificate from the trusted CA covering this host.
    let cert = Certificate::issue(
        &mut rng,
        &rm_ca,
        "urn:snipe:user:alice",
        user.public.clone(),
        vec![CertClaim { name: "allowed-hosts".into(), value: "worker".into() }],
    );
    let mut good_spec = SpawnSpec::program("short", Bytes::new());
    good_spec.credential = Some(cert.encode_to_bytes());
    let good = DaemonMsg::SpawnReq { req_id: 2, spec: good_spec };
    // Wrong-host certificate.
    let cert_other = Certificate::issue(
        &mut rng,
        &rm_ca,
        "urn:snipe:user:bob",
        user.public.clone(),
        vec![CertClaim { name: "allowed-hosts".into(), value: "otherhost".into() }],
    );
    let mut wrong_spec = SpawnSpec::program("short", Bytes::new());
    wrong_spec.credential = Some(cert_other.encode_to_bytes());
    let wrong = DaemonMsg::SpawnReq { req_id: 3, spec: wrong_spec };

    let daemon_ep = Endpoint::new(worker, ports::DAEMON);
    let driver = Driver {
        script: vec![
            (SimDuration::from_millis(10), daemon_ep, bad),
            (SimDuration::from_millis(10), daemon_ep, good),
            (SimDuration::from_millis(10), daemon_ep, wrong),
        ],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(1));
    let log = log.lock().unwrap();
    let outcome = |id: u64| {
        log.iter()
            .find_map(|m| match m {
                DaemonMsg::SpawnResp { req_id, ok, .. } if *req_id == id => Some(*ok),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no response for req {id}: {log:?}"))
    };
    assert!(!outcome(1), "missing credential must be rejected");
    assert!(outcome(2), "trusted credential must be accepted");
    assert!(!outcome(3), "wrong-host credential must be rejected");
}

#[test]
fn kill_terminates_task() {
    let registry = ProgramRegistry::new();
    registry.register("long", |_| Box::new(ShortLived { lifetime: SimDuration::from_secs(3600) }));
    let (mut world, worker, client) = world_with_daemon(registry, None);
    let log = Arc::new(Mutex::new(Vec::new()));
    let daemon_ep = Endpoint::new(worker, ports::DAEMON);
    let mut spec = SpawnSpec::program("long", Bytes::new());
    spec.notify = vec![Endpoint::new(client, 40)];
    let driver = Driver {
        script: vec![
            (SimDuration::from_millis(10), daemon_ep, DaemonMsg::SpawnReq { req_id: 1, spec }),
            // Kill the first spawned task (TASK_BASE port).
            (SimDuration::from_millis(100), daemon_ep, DaemonMsg::Kill { port: ports::TASK_BASE }),
        ],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(1));
    assert!(!world.is_bound(Endpoint::new(worker, ports::TASK_BASE)));
    let log = log.lock().unwrap();
    assert!(log.iter().any(|m| matches!(m, DaemonMsg::TaskEvent { state: TaskState::Exited, .. })));
}

#[test]
fn router_election_spawns_router() {
    let (mut world, worker, client) = world_with_daemon(ProgramRegistry::new(), None);
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = Driver {
        script: vec![(
            SimDuration::from_millis(10),
            Endpoint::new(worker, ports::DAEMON),
            DaemonMsg::ElectRouter { group: 42 },
        )],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_millis(500));
    let log = log.lock().unwrap();
    let resp = log.iter().find_map(|m| match m {
        DaemonMsg::ElectResp { group: 42, router } => Some(*router),
        _ => None,
    });
    assert_eq!(resp, Some(Endpoint::new(worker, ports::MCAST_ROUTER)));
    assert!(world.is_bound(Endpoint::new(worker, ports::MCAST_ROUTER)));
}

#[test]
fn host_crash_reports_crashed_tasks_on_reboot() {
    let registry = ProgramRegistry::new();
    registry.register("long", |_| Box::new(ShortLived { lifetime: SimDuration::from_secs(3600) }));
    let (mut world, worker, client) = world_with_daemon(registry, None);
    let log = Arc::new(Mutex::new(Vec::new()));
    let daemon_ep = Endpoint::new(worker, ports::DAEMON);
    let mut spec = SpawnSpec::program("long", Bytes::new());
    spec.notify = vec![Endpoint::new(client, 40)];
    let driver = Driver {
        script: vec![(
            SimDuration::from_millis(10),
            daemon_ep,
            DaemonMsg::SpawnReq { req_id: 1, spec },
        )],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_millis(200));
    world.host_down(worker);
    world.run_for(SimDuration::from_millis(200));
    world.host_up(worker);
    world.run_for(SimDuration::from_millis(500));
    let log = log.lock().unwrap();
    assert!(
        log.iter().any(|m| matches!(m, DaemonMsg::TaskEvent { state: TaskState::Crashed, .. })),
        "crash must be reported after reboot: {log:?}"
    );
}
