//! The outer wire envelope.
//!
//! Every datagram on a SNIPE wire carries a one-byte protocol
//! discriminator followed by the protocol's own header and payload, so
//! one port can speak several protocols (the daemons multiplex control,
//! SRUDP and multicast relay traffic).

use bytes::Bytes;
use snipe_util::codec::{Decoder, Encoder};
use snipe_util::error::{SnipeError, SnipeResult};

/// Protocol discriminators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// Selective-resend UDP (SNIPE's own reliable datagram protocol).
    Srudp,
    /// Reliable stream (TCP substitute).
    Rstream,
    /// Multicast relay.
    Mcast,
    /// Raw datagram: no reliability, delivered as-is.
    Raw,
}

impl Proto {
    fn tag(self) -> u8 {
        match self {
            Proto::Srudp => 1,
            Proto::Rstream => 2,
            Proto::Mcast => 3,
            Proto::Raw => 4,
        }
    }

    fn from_tag(t: u8) -> SnipeResult<Proto> {
        Ok(match t {
            1 => Proto::Srudp,
            2 => Proto::Rstream,
            3 => Proto::Mcast,
            4 => Proto::Raw,
            other => return Err(SnipeError::Codec(format!("unknown protocol tag {other}"))),
        })
    }
}

/// Wrap a protocol body in the envelope.
pub fn seal(proto: Proto, body: Bytes) -> Bytes {
    let mut enc = Encoder::with_capacity(body.len() + 1);
    enc.put_u8(proto.tag());
    enc.put_raw(&body);
    enc.finish()
}

/// Split an envelope into protocol and body.
pub fn open(datagram: Bytes) -> SnipeResult<(Proto, Bytes)> {
    let mut dec = Decoder::new(datagram);
    let proto = Proto::from_tag(dec.get_u8()?)?;
    let rest = dec.get_raw(dec.remaining())?;
    Ok((proto, rest))
}

/// Bytes of envelope overhead per datagram.
pub const ENVELOPE_OVERHEAD: usize = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let b = seal(Proto::Srudp, Bytes::from_static(b"payload"));
        let (p, body) = open(b).unwrap();
        assert_eq!(p, Proto::Srudp);
        assert_eq!(&body[..], b"payload");
    }

    #[test]
    fn empty_body_ok() {
        let b = seal(Proto::Raw, Bytes::new());
        let (p, body) = open(b).unwrap();
        assert_eq!(p, Proto::Raw);
        assert!(body.is_empty());
    }

    #[test]
    fn unknown_tag_rejected() {
        let err = open(Bytes::from_static(&[99, 1, 2])).unwrap_err();
        assert_eq!(err.kind(), "codec");
    }

    #[test]
    fn truncated_rejected() {
        assert!(open(Bytes::new()).is_err());
    }
}
