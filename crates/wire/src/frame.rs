//! The outer wire envelope.
//!
//! Every datagram on a SNIPE wire carries a one-byte protocol
//! discriminator followed by the protocol's own header and payload, so
//! one port can speak several protocols (the daemons multiplex control,
//! SRUDP and multicast relay traffic). A trailing FNV-1a checksum over
//! the tag and body catches payload corruption on the wire: a flipped
//! bit anywhere in the datagram turns `open` into a codec error, which
//! every receiver treats as a drop (and SRUDP/RSTREAM retransmit) —
//! corrupt frames must never panic or be delivered.

use bytes::Bytes;
use snipe_util::codec::{Decoder, Encoder};
use snipe_util::error::{SnipeError, SnipeResult};

/// Protocol discriminators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// Selective-resend UDP (SNIPE's own reliable datagram protocol).
    Srudp,
    /// Reliable stream (TCP substitute).
    Rstream,
    /// Multicast relay.
    Mcast,
    /// Raw datagram: no reliability, delivered as-is.
    Raw,
}

impl Proto {
    /// The one-byte wire discriminator (also used to tag per-driver
    /// sections in stack snapshots).
    pub(crate) fn tag(self) -> u8 {
        match self {
            Proto::Srudp => 1,
            Proto::Rstream => 2,
            Proto::Mcast => 3,
            Proto::Raw => 4,
        }
    }

    pub(crate) fn from_tag(t: u8) -> SnipeResult<Proto> {
        Ok(match t {
            1 => Proto::Srudp,
            2 => Proto::Rstream,
            3 => Proto::Mcast,
            4 => Proto::Raw,
            other => return Err(SnipeError::Codec(format!("unknown protocol tag {other}"))),
        })
    }
}

/// Why an envelope failed to open. The dense classification the
/// stack's decode-drop counters index by: hostile bytes are expected
/// input on a real wire, so each failure class is *counted*, never
/// panicked on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than tag + checksum ([`ENVELOPE_OVERHEAD`]).
    Truncated,
    /// Stored checksum does not match the computed one.
    Checksum,
    /// Checksum fine, but the protocol tag names no known protocol.
    UnknownTag,
}

impl FrameError {
    /// Number of variants (size of a flat per-class counter array).
    pub const COUNT: usize = 3;

    /// Stable lowercase name (metrics keys).
    pub fn name(self) -> &'static str {
        match self {
            FrameError::Truncated => "truncated",
            FrameError::Checksum => "checksum",
            FrameError::UnknownTag => "unknown_tag",
        }
    }
}

/// FNV-1a over the tag and body. 32 bits keeps the per-datagram
/// overhead at 4 bytes while making an undetected flip a 1-in-4-billion
/// event — plenty for a simulated wire whose corruption is injected,
/// not thermal.
fn checksum(tag: u8, body: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    h = (h ^ tag as u32).wrapping_mul(0x01000193);
    for &b in body {
        h = (h ^ b as u32).wrapping_mul(0x01000193);
    }
    h
}

/// Wrap a protocol body in the envelope.
pub fn seal(proto: Proto, body: Bytes) -> Bytes {
    let mut enc = Encoder::with_capacity(body.len() + ENVELOPE_OVERHEAD);
    let tag = proto.tag();
    enc.put_u8(tag);
    enc.put_raw(&body);
    enc.put_u32(checksum(tag, &body));
    enc.finish()
}

/// Split an envelope into protocol and body, verifying the checksum.
pub fn open(datagram: Bytes) -> SnipeResult<(Proto, Bytes)> {
    let len = datagram.len();
    open_classified(datagram).map_err(|e| match e {
        FrameError::Truncated => SnipeError::Codec(format!("truncated envelope: {len} bytes")),
        FrameError::Checksum => SnipeError::Codec("frame checksum mismatch".to_string()),
        FrameError::UnknownTag => SnipeError::Codec("unknown protocol tag".to_string()),
    })
}

/// [`open`], but with the failure *class* preserved so the stack can
/// count truncation, corruption and unknown tags separately. The
/// length guard runs first: `remaining() - 4` below can never
/// underflow on a datagram that passed it.
pub fn open_classified(datagram: Bytes) -> Result<(Proto, Bytes), FrameError> {
    if datagram.len() < ENVELOPE_OVERHEAD {
        return Err(FrameError::Truncated);
    }
    let mut dec = Decoder::new(datagram);
    let tag = dec.get_u8().map_err(|_| FrameError::Truncated)?;
    let body = dec.get_raw(dec.remaining() - 4).map_err(|_| FrameError::Truncated)?;
    let want = dec.get_u32().map_err(|_| FrameError::Truncated)?;
    let got = checksum(tag, &body);
    if want != got {
        return Err(FrameError::Checksum);
    }
    let proto = Proto::from_tag(tag).map_err(|_| FrameError::UnknownTag)?;
    Ok((proto, body))
}

/// Bytes of envelope overhead per datagram (tag + checksum).
pub const ENVELOPE_OVERHEAD: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let b = seal(Proto::Srudp, Bytes::from_static(b"payload"));
        let (p, body) = open(b).unwrap();
        assert_eq!(p, Proto::Srudp);
        assert_eq!(&body[..], b"payload");
    }

    #[test]
    fn empty_body_ok() {
        let b = seal(Proto::Raw, Bytes::new());
        let (p, body) = open(b).unwrap();
        assert_eq!(p, Proto::Raw);
        assert!(body.is_empty());
    }

    #[test]
    fn unknown_tag_rejected() {
        // A well-checksummed frame with a bogus protocol tag.
        let mut enc = Encoder::new();
        enc.put_u8(99);
        enc.put_raw(b"xy");
        enc.put_u32(super::checksum(99, b"xy"));
        let err = open(enc.finish()).unwrap_err();
        assert_eq!(err.kind(), "codec");
    }

    #[test]
    fn truncated_rejected() {
        assert!(open(Bytes::new()).is_err());
        assert!(open(Bytes::from_static(&[1, 2, 3])).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let orig = seal(Proto::Srudp, Bytes::from_static(b"hello, wire"));
        for i in 0..orig.len() {
            for bit in 0..8 {
                let mut flipped = orig.to_vec();
                flipped[i] ^= 1 << bit;
                let r = open(Bytes::from(flipped));
                assert!(r.is_err(), "flip of byte {i} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn open_classified_reports_the_failure_class() {
        assert_eq!(open_classified(Bytes::new()).unwrap_err(), FrameError::Truncated);
        assert_eq!(
            open_classified(Bytes::from_static(&[1, 2, 3, 4])).unwrap_err(),
            FrameError::Truncated
        );
        let good = seal(Proto::Raw, Bytes::from_static(b"ok"));
        let mut corrupt = good.to_vec();
        corrupt[1] ^= 0xFF;
        assert_eq!(open_classified(Bytes::from(corrupt)).unwrap_err(), FrameError::Checksum);
        let mut enc = Encoder::new();
        enc.put_u8(42);
        enc.put_raw(b"zz");
        enc.put_u32(super::checksum(42, b"zz"));
        assert_eq!(open_classified(enc.finish()).unwrap_err(), FrameError::UnknownTag);
        assert!(open_classified(good).is_ok());
    }

    #[test]
    fn overhead_constant_is_accurate() {
        let body = Bytes::from_static(b"abc");
        let sealed = seal(Proto::Mcast, body.clone());
        assert_eq!(sealed.len(), body.len() + ENVELOPE_OVERHEAD);
    }
}
