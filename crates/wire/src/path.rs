//! Multi-path route scoring and per-message medium selection.
//!
//! The paper (§3, §6): SNIPE's communications layer is "multi-path,
//! multi-media" — a peer may be reachable over several networks
//! (Ethernet, ATM, ...) and the library "provided the ability to
//! switch routes/interfaces as links failed without user applications
//! intervening". The old `RouteManager` only kept a ranked list and a
//! cursor; [`PathSelector`] keeps, per `(peer, route/medium)`
//! candidate, an RTT EWMA and a loss/failover penalty, and chooses a
//! medium *per message*:
//!
//! * healthy traffic keeps flowing on the current route (a candidate
//!   is only abandoned on a *strictly* better score, so equal-scoring
//!   routes never flap);
//! * consecutive transport timeouts past [`FAILOVER_THRESHOLD`]
//!   penalise the current route and rotate to the best-scoring
//!   alternative (ties break in rank order, preserving the old
//!   deterministic next-candidate behaviour);
//! * forward progress decays the carrying route's penalty, so a gray
//!   link that heals earns its way back — once rotation retries it —
//!   instead of being blacklisted forever.
//!
//! Scores are unitless: one failover costs [`PENALTY_PER_FAILOVER`],
//! measured RTT contributes its value in seconds, and a route we have
//! never measured is assumed to cost [`UNMEASURED_RTT_SCORE`] (the
//! default initial RTO) so an untried alternative never beats a
//! working route on RTT alone, but always beats one that is failing.

use std::collections::HashMap;

use snipe_util::id::NetId;
use snipe_util::time::{SimDuration, SimTime};

use crate::srudp::NodeKey;

/// Consecutive transport timeouts against a peer before its route is
/// rotated.
pub const FAILOVER_THRESHOLD: u32 = 2;

/// Score cost added to a route each time we fail over away from it.
pub const PENALTY_PER_FAILOVER: f64 = 1.0;

/// Multiplicative penalty decay applied on each forward-progress
/// report. ~60 acked datagrams take a full failover penalty below
/// 0.05, at which point a healed route competes on RTT again.
pub const PENALTY_DECAY: f64 = 0.95;

/// Assumed RTT score (seconds) for a route with no EWMA yet: the
/// default initial RTO. Untried routes look mediocre, not perfect.
pub const UNMEASURED_RTT_SCORE: f64 = 0.100;

/// Penalties below this are snapped to zero so scores converge exactly.
const PENALTY_FLOOR: f64 = 1e-6;

/// Score slack below which two routes are considered equal; prevents
/// float-dust flapping between near-identical candidates.
const SCORE_EPSILON: f64 = 1e-9;

/// EWMA gain: `srtt = srtt * 7/8 + sample * 1/8` (RFC 6298 alpha).
const RTT_EWMA_SHIFT: u32 = 3;

/// Minimum spacing between duplicate-evidence rotations. One
/// retransmit burst fans out into many packet events within well
/// under a millisecond; dup reports inside this window are the same
/// burst still arriving, not fresh proof that the *new* return route
/// is also failing, so at most one rotation may act on them.
pub const DUP_ROTATE_GUARD: SimDuration = SimDuration::from_millis(10);

/// Smallest RTT sample folded into the EWMA. A zero (or near-zero)
/// sample — a corrupted timestamp echo, a clock artifact — would seed
/// `srtt` at 0 and make the route score *perfect* forever (and small
/// integer samples vanish in the `>> 3` EWMA shift). One microsecond
/// is faster than any simulated medium round trip.
pub const RTT_SAMPLE_MIN: SimDuration = SimDuration::from_micros(1);

/// Largest RTT sample folded into the EWMA. A corrupted echo can
/// claim an absurd RTT; unclamped, one such sample poisons the EWMA
/// so badly that ~`8 * log2(huge/real)` genuine samples are needed to
/// recover. Ten seconds is beyond any real path and any RTO clamp.
pub const RTT_SAMPLE_MAX: SimDuration = SimDuration::from_millis(10_000);

/// One candidate route/medium to a peer.
#[derive(Clone, Debug)]
struct Candidate {
    net: NetId,
    /// Smoothed RTT in nanoseconds, once measured on this route.
    srtt_ns: Option<u64>,
    /// Accumulated failover/loss pressure; decays on progress.
    penalty: f64,
}

impl Candidate {
    fn new(net: NetId) -> Candidate {
        Candidate { net, srtt_ns: None, penalty: 0.0 }
    }

    fn score(&self) -> f64 {
        let rtt = match self.srtt_ns {
            Some(ns) => ns as f64 / 1e9,
            None => UNMEASURED_RTT_SCORE,
        };
        let s = self.penalty + rtt;
        // A non-finite score (poisoned penalty arithmetic) must never
        // win a comparison: NaN compares false against everything, so
        // an unguarded NaN would *stick* as the selected route.
        if s.is_finite() {
            s
        } else {
            f64::MAX
        }
    }
}

/// Ranked, scored candidate routes to one peer.
///
/// Keeps the old `RouteManager` contract — `current`/`rotate`/
/// `update`/`report_timeouts` with rank-order determinism — and adds
/// the per-candidate scoring used by [`select`](PeerPaths::select).
#[derive(Clone, Debug, Default)]
pub struct PeerPaths {
    /// Candidates, best-ranked first. Empty = let the simulator route.
    candidates: Vec<Candidate>,
    current: usize,
    /// Count of rotations performed (for tests/benches).
    pub failovers: u32,
    /// Timeout count at the last timeout-driven rotation. Rotation is
    /// edge-triggered: the counter must grow by a full
    /// [`FAILOVER_THRESHOLD`] beyond this before we rotate again, so
    /// polling `report_timeouts` with an unchanged count (which the
    /// stack does on every datagram and timer) cannot flap the route.
    last_timeout_rotation: u32,
    /// When the last duplicate-evidence rotation happened; gates
    /// [`rotate_for_dups`](PeerPaths::rotate_for_dups).
    last_dup_rotation: Option<SimTime>,
}

impl PeerPaths {
    /// With an explicit candidate ranking.
    pub fn new(candidates: Vec<NetId>) -> PeerPaths {
        PeerPaths {
            candidates: candidates.into_iter().map(Candidate::new).collect(),
            ..PeerPaths::default()
        }
    }

    /// No pinning: default routing.
    pub fn unpinned() -> PeerPaths {
        PeerPaths::default()
    }

    /// The currently preferred network, if any are pinned.
    pub fn current(&self) -> Option<NetId> {
        self.candidates.get(self.current).map(|c| c.net)
    }

    /// All candidate networks, in rank order.
    pub fn candidates(&self) -> impl Iterator<Item = NetId> + '_ {
        self.candidates.iter().map(|c| c.net)
    }

    /// The score of `net`, if it is a candidate. Lower is better.
    pub fn score(&self, net: NetId) -> Option<f64> {
        self.candidates.iter().find(|c| c.net == net).map(|c| c.score())
    }

    /// The score [`select`](PeerPaths::select) would act on: the best
    /// candidate's score (RTT EWMA in seconds plus failover pressure;
    /// lower is better). `None` when no routes are pinned — the caller
    /// knows nothing about the peer and should treat it as unmeasured.
    pub fn best_score(&self) -> Option<f64> {
        self.candidates
            .iter()
            .map(Candidate::score)
            .min_by(|a, b| a.partial_cmp(b).expect("score() is always finite"))
    }

    /// Replace the candidate set (fresh RC metadata), keeping the
    /// current choice — and any accumulated RTT/penalty state for
    /// retained networks — when still present.
    pub fn update(&mut self, candidates: Vec<NetId>) {
        let keep = self.current();
        let old = std::mem::take(&mut self.candidates);
        self.candidates = candidates
            .into_iter()
            .map(|net| {
                old.iter().find(|c| c.net == net).cloned().unwrap_or_else(|| Candidate::new(net))
            })
            .collect();
        self.current =
            keep.and_then(|n| self.candidates.iter().position(|c| c.net == n)).unwrap_or(0);
    }

    /// Penalise the current route and move to the best-scoring
    /// alternative (ties in rank order, wrapping). Returns the new
    /// choice.
    pub fn rotate(&mut self) -> Option<NetId> {
        let n = self.candidates.len();
        if n < 2 {
            // With one candidate (or none) there is nothing to rotate
            // *to*: a "self-swap" here would penalise the only usable
            // route and count a phantom failover — poisoning its score
            // against routes a later RC refresh adds — so this is a
            // strict no-op.
            return self.current();
        }
        self.candidates[self.current].penalty += PENALTY_PER_FAILOVER;
        self.failovers += 1;
        let mut best = (self.current + 1) % n;
        let mut best_score = self.candidates[best].score();
        for off in 2..n {
            let i = (self.current + off) % n;
            let s = self.candidates[i].score();
            if s + SCORE_EPSILON < best_score {
                best = i;
                best_score = s;
            }
        }
        self.current = best;
        self.current()
    }

    /// Feed the transport's consecutive-timeout count; rotates when
    /// the count has grown by a full [`FAILOVER_THRESHOLD`] since the
    /// last timeout-driven rotation. Returns `true` if a rotation
    /// happened.
    ///
    /// This is deliberately *edge*-triggered: the stack polls this
    /// with the same count on every datagram and timer, and the count
    /// only resets when an ACK finally lands. A level-triggered
    /// rotation would therefore fire on every poll during an outage,
    /// ping-ponging the route and never letting the freshly chosen
    /// alternative carry a full round trip. Instead, each new route
    /// gets the same [`FAILOVER_THRESHOLD`] timeouts of grace the
    /// original had before it is abandoned in turn.
    pub fn report_timeouts(&mut self, consecutive: u32) -> bool {
        if consecutive == 0 {
            self.last_timeout_rotation = 0;
            return false;
        }
        if consecutive >= self.last_timeout_rotation + FAILOVER_THRESHOLD
            && self.candidates.len() > 1
        {
            self.last_timeout_rotation = consecutive;
            self.rotate();
            true
        } else {
            false
        }
    }

    /// Rotate on duplicate-DATA evidence (our ACKs are dying on the
    /// return route), rate-limited to one rotation per
    /// [`DUP_ROTATE_GUARD`]: the retransmit burst that produced the
    /// evidence keeps arriving for a while after we have already
    /// switched, and those stragglers say nothing about the new route.
    /// Returns `true` if a rotation happened.
    pub fn rotate_for_dups(&mut self, now: SimTime) -> bool {
        let guarded =
            self.last_dup_rotation.map(|t| now.since(t) < DUP_ROTATE_GUARD).unwrap_or(false);
        if guarded || self.candidates.len() < 2 {
            return false;
        }
        self.last_dup_rotation = Some(now);
        self.rotate();
        true
    }

    /// Fold an RTT sample into the current route's EWMA. Samples are
    /// clamped to `[`[`RTT_SAMPLE_MIN`]`, `[`RTT_SAMPLE_MAX`]`]` so a
    /// corrupted echo (zero or absurdly huge) cannot seed the EWMA
    /// with a score the route could never have earned.
    pub fn record_rtt(&mut self, sample: SimDuration) {
        if let Some(c) = self.candidates.get_mut(self.current) {
            let ns = sample.as_nanos().clamp(RTT_SAMPLE_MIN.as_nanos(), RTT_SAMPLE_MAX.as_nanos());
            c.srtt_ns = Some(match c.srtt_ns {
                None => ns,
                Some(s) => s - (s >> RTT_EWMA_SHIFT) + (ns >> RTT_EWMA_SHIFT),
            });
        }
    }

    /// The transport made forward progress on the *current* route:
    /// decay its penalty so past failures there are forgiven by fresh
    /// evidence. Other routes keep their penalties — absence of
    /// traffic is not evidence of health (a blackholed route must not
    /// "heal" while another route carries the transfer); they earn
    /// their way back when rotation tries them again.
    pub fn record_progress(&mut self) {
        if let Some(c) = self.candidates.get_mut(self.current) {
            c.penalty *= PENALTY_DECAY;
            // The floor snaps decay dust, negative values (a penalty
            // must never *reward* a route) and poisoned arithmetic
            // alike back to exactly zero.
            if c.penalty <= PENALTY_FLOOR || c.penalty.is_nan() {
                c.penalty = 0.0;
            }
        }
    }

    /// Per-message medium selection: the best-scoring candidate,
    /// preferring the current route on ties (so equal routes never
    /// flap) and breaking remaining ties in cyclic rank order.
    pub fn select(&self) -> Option<NetId> {
        let n = self.candidates.len();
        if n == 0 {
            return None;
        }
        let mut best = self.current;
        let mut best_score = self.candidates[best].score();
        for off in 1..n {
            let i = (self.current + off) % n;
            let s = self.candidates[i].score();
            if s + SCORE_EPSILON < best_score {
                best = i;
                best_score = s;
            }
        }
        Some(self.candidates[best].net)
    }

    /// Up to `k` *distinct* routes in selection-preference order (best
    /// score first, current route preferred on ties, remaining ties in
    /// cyclic rank order) — the share-spraying counterpart of
    /// [`Self::select`]. With fewer than `k` candidates every route is
    /// returned: the caller wraps its share index around whatever
    /// exists, so degraded peers degrade gracefully to single-path
    /// behaviour instead of failing.
    pub fn select_k_distinct(&self, k: usize) -> Vec<NetId> {
        let n = self.candidates.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        // Rank candidates the way select() compares them: by score
        // with SCORE_EPSILON-blurred ties broken by cyclic distance
        // from the current route.
        let mut order: Vec<usize> = (0..n).map(|off| (self.current + off) % n).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (self.candidates[a].score(), self.candidates[b].score());
            if sa + SCORE_EPSILON < sb {
                std::cmp::Ordering::Less
            } else if sb + SCORE_EPSILON < sa {
                std::cmp::Ordering::Greater
            } else {
                // Tie: cyclic distance from current (stable under the
                // initial cyclic layout, so current always wins a tie).
                let da = (a + n - self.current) % n;
                let db = (b + n - self.current) % n;
                da.cmp(&db)
            }
        });
        order.into_iter().take(k).map(|i| self.candidates[i].net).collect()
    }
}

/// Per-peer path state for a whole stack: `(peer, route, medium)`
/// scoring and selection behind one keyed façade.
#[derive(Debug, Default)]
pub struct PathSelector {
    peers: HashMap<NodeKey, PeerPaths>,
}

impl PathSelector {
    pub fn new() -> PathSelector {
        PathSelector::default()
    }

    /// Install or refresh the candidate ranking for `key`.
    pub fn update(&mut self, key: NodeKey, candidates: Vec<NetId>) {
        match self.peers.get_mut(&key) {
            Some(p) => p.update(candidates),
            None => {
                let paths = if candidates.is_empty() {
                    PeerPaths::unpinned()
                } else {
                    PeerPaths::new(candidates)
                };
                self.peers.insert(key, paths);
            }
        }
    }

    /// Per-peer state, if `key` is known.
    pub fn peer(&self, key: NodeKey) -> Option<&PeerPaths> {
        self.peers.get(&key)
    }

    /// Mutable per-peer state, if `key` is known.
    pub fn peer_mut(&mut self, key: NodeKey) -> Option<&mut PeerPaths> {
        self.peers.get_mut(&key)
    }

    /// The medium to use for the next message to `key` (None = let the
    /// simulator route).
    pub fn select(&self, key: NodeKey) -> Option<NetId> {
        self.peers.get(&key).and_then(|p| p.select())
    }

    /// Up to `k` distinct routes toward `key` in preference order, for
    /// spreading erasure-coded shares across media ([`crate::fec`]).
    /// Empty when the peer is unknown or unpinned — the caller falls
    /// back to default routing, same as [`Self::select`].
    pub fn select_k_distinct(&self, key: NodeKey, k: usize) -> Vec<NetId> {
        self.peers.get(&key).map(|p| p.select_k_distinct(k)).unwrap_or_default()
    }

    /// Rotations performed for `key`.
    pub fn failovers(&self, key: NodeKey) -> u32 {
        self.peers.get(&key).map(|p| p.failovers).unwrap_or(0)
    }

    /// Read-only path score toward `key` — the best candidate's score,
    /// or `None` for unknown/unpinned peers. This is the hook replica
    /// selection uses to rank file servers by observed performance
    /// without reaching into transport internals.
    pub fn peer_score(&self, key: NodeKey) -> Option<f64> {
        self.peers.get(&key).and_then(|p| p.best_score())
    }

    /// Append every tracked peer key to `into` (reused scratch, no
    /// per-call allocation in steady state).
    pub fn keys_into(&self, into: &mut Vec<NodeKey>) {
        // Sorted: callers act on peers in this order (failover checks,
        // endpoint routing), and any behaviour keyed to hash iteration
        // order would differ run to run under seeded replay.
        let start = into.len();
        into.extend(self.peers.keys().copied());
        into[start..].sort_unstable();
    }

    /// Iterate every tracked peer key, in sorted (deterministic) order.
    pub fn keys(&self) -> impl Iterator<Item = NodeKey> + '_ {
        let mut v: Vec<NodeKey> = self.peers.keys().copied().collect();
        v.sort_unstable();
        v.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NetId {
        NetId(i)
    }

    #[test]
    fn rotation_cycles() {
        let mut r = PeerPaths::new(vec![n(1), n(2), n(3)]);
        assert_eq!(r.current(), Some(n(1)));
        assert_eq!(r.rotate(), Some(n(2)));
        assert_eq!(r.rotate(), Some(n(3)));
        assert_eq!(r.rotate(), Some(n(1)));
        assert_eq!(r.failovers, 3);
    }

    #[test]
    fn unpinned_never_rotates() {
        let mut r = PeerPaths::unpinned();
        assert_eq!(r.current(), None);
        assert_eq!(r.rotate(), None);
        assert!(!r.report_timeouts(10));
    }

    #[test]
    fn threshold_behaviour() {
        let mut r = PeerPaths::new(vec![n(1), n(2)]);
        assert!(!r.report_timeouts(FAILOVER_THRESHOLD - 1));
        assert_eq!(r.current(), Some(n(1)));
        assert!(r.report_timeouts(FAILOVER_THRESHOLD));
        assert_eq!(r.current(), Some(n(2)));
    }

    #[test]
    fn single_candidate_does_not_flap() {
        let mut r = PeerPaths::new(vec![n(1)]);
        assert!(!r.report_timeouts(10));
        assert_eq!(r.current(), Some(n(1)));
    }

    #[test]
    fn update_preserves_current_when_possible() {
        let mut r = PeerPaths::new(vec![n(1), n(2)]);
        r.rotate(); // now n(2)
        r.update(vec![n(3), n(2)]);
        assert_eq!(r.current(), Some(n(2)));
        r.update(vec![n(4), n(5)]);
        assert_eq!(r.current(), Some(n(4)));
    }

    #[test]
    fn select_prefers_current_on_equal_scores() {
        let r = PeerPaths::new(vec![n(1), n(2), n(3)]);
        assert_eq!(r.select(), Some(n(1)));
        let mut r2 = r.clone();
        r2.rotate();
        assert_eq!(r2.select(), Some(n(2)));
    }

    #[test]
    fn rotation_avoids_the_worst_scored_candidate() {
        let mut r = PeerPaths::new(vec![n(1), n(2), n(3)]);
        // Fail over away from n(1) and then n(2): the second rotation
        // must skip the already-penalised n(1) and land on n(3).
        r.rotate();
        assert_eq!(r.current(), Some(n(2)));
        r.rotate();
        assert_eq!(r.current(), Some(n(3)));
        // Third rotation: n(1) and n(2) are equally penalised, cyclic
        // order picks n(1).
        r.rotate();
        assert_eq!(r.current(), Some(n(1)));
    }

    #[test]
    fn measured_rtt_beats_unmeasured_prior_only_when_healthy() {
        let mut r = PeerPaths::new(vec![n(1), n(2)]);
        // A fast measured route keeps selection even though the
        // alternative has no penalty.
        r.record_rtt(SimDuration::from_millis(5));
        assert_eq!(r.select(), Some(n(1)));
        assert!(r.score(n(1)).unwrap() < r.score(n(2)).unwrap());
        // But once it accumulates a failover penalty, the untried
        // route wins.
        r.rotate();
        assert_eq!(r.select(), Some(n(2)));
    }

    #[test]
    fn progress_decays_only_the_current_routes_penalty() {
        let mut r = PeerPaths::new(vec![n(1), n(2)]);
        r.rotate(); // n(1) penalised, current = n(2)
        r.rotate(); // n(2) penalised, current back on n(1)
        assert_eq!(r.current(), Some(n(1)));
        let hot_other = r.score(n(2)).unwrap();
        assert!(hot_other >= PENALTY_PER_FAILOVER);
        for _ in 0..400 {
            r.record_progress();
        }
        // The route carrying traffic fully heals: only the RTT prior
        // remains.
        assert!((r.score(n(1)).unwrap() - UNMEASURED_RTT_SCORE).abs() < 1e-12);
        // The idle route is not forgiven by someone else's progress.
        assert_eq!(r.score(n(2)).unwrap(), hot_other);
    }

    #[test]
    fn selector_tracks_peers_independently() {
        let mut s = PathSelector::new();
        s.update(7, vec![n(1), n(2)]);
        s.update(8, vec![]);
        assert_eq!(s.select(7), Some(n(1)));
        assert_eq!(s.select(8), None);
        assert!(s.peer_mut(7).unwrap().report_timeouts(2));
        assert_eq!(s.select(7), Some(n(2)));
        assert_eq!(s.failovers(7), 1);
        assert_eq!(s.failovers(8), 0);
        let mut keys = Vec::new();
        s.keys_into(&mut keys);
        keys.sort_unstable();
        assert_eq!(keys, vec![7, 8]);
    }

    #[test]
    fn select_k_distinct_is_cyclic_from_current_on_ties() {
        let mut r = PeerPaths::new(vec![n(1), n(2), n(3)]);
        assert_eq!(r.select_k_distinct(3), vec![n(1), n(2), n(3)]);
        assert_eq!(r.select_k_distinct(2), vec![n(1), n(2)]);
        r.rotate();
        // Equal scores: current leads, rank order continues cyclically.
        assert_eq!(r.select_k_distinct(3), vec![n(2), n(3), n(1)]);
    }

    #[test]
    fn select_k_distinct_degrades_to_available_routes() {
        let r = PeerPaths::new(vec![n(1), n(2)]);
        assert_eq!(r.select_k_distinct(5), vec![n(1), n(2)]);
        assert_eq!(r.select_k_distinct(0), Vec::<NetId>::new());
        assert_eq!(PeerPaths::unpinned().select_k_distinct(4), Vec::<NetId>::new());
    }

    #[test]
    fn select_k_distinct_ranks_penalised_routes_last() {
        let mut r = PeerPaths::new(vec![n(1), n(2), n(3)]);
        // Fail over away from n(1): it accrues a penalty, and the
        // spray order must park it behind the healthy routes.
        assert!(r.report_timeouts(FAILOVER_THRESHOLD));
        assert_eq!(r.current(), Some(n(2)));
        assert_eq!(r.select_k_distinct(3), vec![n(2), n(3), n(1)]);
    }

    #[test]
    fn best_score_tracks_measurements_and_penalties() {
        let mut r = PeerPaths::new(vec![n(1), n(2)]);
        // Unmeasured: both routes sit at the prior.
        assert!((r.best_score().unwrap() - UNMEASURED_RTT_SCORE).abs() < 1e-12);
        // A fast measurement pulls the best score down.
        r.record_rtt(SimDuration::from_millis(5));
        assert!(r.best_score().unwrap() < UNMEASURED_RTT_SCORE);
        assert!(PeerPaths::unpinned().best_score().is_none());
    }

    #[test]
    fn selector_peer_score_facade() {
        let mut s = PathSelector::new();
        s.update(7, vec![n(1), n(2)]);
        s.update(8, vec![]);
        s.peer_mut(7).unwrap().record_rtt(SimDuration::from_millis(2));
        let sc = s.peer_score(7).unwrap();
        assert!(sc < UNMEASURED_RTT_SCORE);
        assert_eq!(s.peer_score(8), None, "unpinned peer has no score");
        assert_eq!(s.peer_score(9), None, "unknown peer has no score");
    }

    #[test]
    fn selector_k_distinct_facade_matches_peer_state() {
        let mut s = PathSelector::new();
        s.update(7, vec![n(1), n(2)]);
        s.update(8, vec![]);
        assert_eq!(s.select_k_distinct(7, 4), vec![n(1), n(2)]);
        assert_eq!(s.select_k_distinct(8, 4), Vec::<NetId>::new());
        assert_eq!(s.select_k_distinct(9, 4), Vec::<NetId>::new());
    }
}
