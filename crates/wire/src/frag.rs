//! Message fragmentation and reassembly.
//!
//! The client library provides "message passing, routing ...,
//! fragmentation, data conversion" (§3.4). Messages larger than the
//! path MTU are split into numbered fragments; the receiver reassembles
//! them tolerant of loss, duplication and reordering (retransmission is
//! the protocol layer's job).

use bytes::Bytes;
use std::collections::HashMap;

use snipe_util::error::{SnipeError, SnipeResult};

/// Split `payload` into chunks of at most `frag_size` bytes.
/// A zero-length payload still produces one (empty) fragment so the
/// message exists on the wire.
pub fn split(payload: &Bytes, frag_size: usize) -> Vec<Bytes> {
    assert!(frag_size > 0, "fragment size must be positive");
    if payload.is_empty() {
        return vec![Bytes::new()];
    }
    let mut out = Vec::with_capacity(payload.len().div_ceil(frag_size));
    let mut off = 0;
    while off < payload.len() {
        let end = (off + frag_size).min(payload.len());
        out.push(payload.slice(off..end));
        off = end;
    }
    out
}

/// Reassembly buffer for one message.
#[derive(Debug)]
pub struct Reassembly {
    frags: Vec<Option<Bytes>>,
    received: usize,
}

impl Reassembly {
    /// For a message of `count` fragments.
    pub fn new(count: usize) -> Reassembly {
        Reassembly { frags: (0..count).map(|_| None).collect(), received: 0 }
    }

    /// Store one fragment. Duplicates are ignored. Errors on index or
    /// count mismatch (corrupt/hostile sender).
    pub fn insert(&mut self, idx: usize, data: Bytes) -> SnipeResult<()> {
        if idx >= self.frags.len() {
            return Err(SnipeError::Protocol(format!(
                "fragment index {idx} out of range (count {})",
                self.frags.len()
            )));
        }
        if self.frags[idx].is_none() {
            self.frags[idx] = Some(data);
            self.received += 1;
        }
        Ok(())
    }

    /// Is a fragment present?
    pub fn has(&self, idx: usize) -> bool {
        self.frags.get(idx).is_some_and(|f| f.is_some())
    }

    /// All fragments present?
    pub fn complete(&self) -> bool {
        self.received == self.frags.len()
    }

    /// Fragments received so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Total fragments expected.
    pub fn expected(&self) -> usize {
        self.frags.len()
    }

    /// Indices still missing (for SACK generation).
    pub fn missing(&self) -> Vec<u32> {
        self.frags
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Concatenate into the original message.
    ///
    /// # Panics
    /// Panics if not [`Self::complete`].
    pub fn assemble(mut self) -> Bytes {
        assert!(self.complete(), "assembling incomplete message");
        // A message that fit in one fragment needs no concatenation:
        // hand the original buffer back without copying (the common
        // case for sub-MTU traffic).
        if self.frags.len() == 1 {
            return self.frags[0].take().expect("complete");
        }
        let total: usize = self.frags.iter().map(|f| f.as_ref().expect("complete").len()).sum();
        let mut out = Vec::with_capacity(total);
        for f in self.frags {
            out.extend_from_slice(&f.expect("complete"));
        }
        Bytes::from(out)
    }
}

/// Most fragments one message may claim. A hostile DATA packet carries
/// an arbitrary 32-bit count; without this bound a single forged header
/// makes [`Reassembly::new`] allocate gigabytes before any payload
/// arrives. 64 Ki fragments × the ~1400-byte MTU is a ~90 MB message —
/// far beyond anything the workloads send.
pub const MAX_FRAGMENTS: usize = 1 << 16;

/// Reassembly across many concurrent messages from one peer.
#[derive(Debug, Default)]
pub struct ReassemblySet {
    msgs: HashMap<u64, Reassembly>,
}

impl ReassemblySet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fragment of message `msg_id`; returns the full message
    /// once complete (and forgets the buffer).
    pub fn insert(
        &mut self,
        msg_id: u64,
        idx: usize,
        count: usize,
        data: Bytes,
    ) -> SnipeResult<Option<Bytes>> {
        if count == 0 {
            return Err(SnipeError::Protocol("zero fragment count".into()));
        }
        if count > MAX_FRAGMENTS {
            return Err(SnipeError::Protocol(format!(
                "fragment count {count} exceeds limit {MAX_FRAGMENTS}"
            )));
        }
        // Validate before the entry exists: a bogus index must not
        // leave an empty reassembly buffer behind (state poisoning).
        if idx >= count {
            return Err(SnipeError::Protocol(format!(
                "fragment index {idx} out of range (count {count})"
            )));
        }
        let r = self.msgs.entry(msg_id).or_insert_with(|| Reassembly::new(count));
        if r.expected() != count {
            return Err(SnipeError::Protocol(format!(
                "fragment count changed for msg {msg_id}: {} vs {count}",
                r.expected()
            )));
        }
        r.insert(idx, data)?;
        if r.complete() {
            let r = self.msgs.remove(&msg_id).expect("present");
            Ok(Some(r.assemble()))
        } else {
            Ok(None)
        }
    }

    /// Is a specific fragment already present?
    pub fn has(&self, msg_id: u64, idx: usize) -> bool {
        self.msgs.get(&msg_id).is_some_and(|r| r.has(idx))
    }

    /// Fragments still missing for a message (empty if unknown —
    /// either never seen or already delivered).
    pub fn missing(&self, msg_id: u64) -> Vec<u32> {
        self.msgs.get(&msg_id).map(|r| r.missing()).unwrap_or_default()
    }

    /// Number of in-progress messages.
    pub fn in_progress(&self) -> usize {
        self.msgs.len()
    }

    /// Drop the partial state of a message (peer gave up).
    pub fn forget(&mut self, msg_id: u64) {
        self.msgs.remove(&msg_id);
    }

    /// Export all partial reassembly state (for migration checkpoints).
    pub fn export(&self) -> Vec<(u64, Vec<Option<Bytes>>)> {
        let mut v: Vec<(u64, Vec<Option<Bytes>>)> =
            self.msgs.iter().map(|(id, r)| (*id, r.frags.clone())).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Import previously exported state (replaces any current state for
    /// the same message ids).
    pub fn import(&mut self, state: Vec<(u64, Vec<Option<Bytes>>)>) {
        for (id, frags) in state {
            let received = frags.iter().filter(|f| f.is_some()).count();
            self.msgs.insert(id, Reassembly { frags, received });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sizes() {
        let payload = Bytes::from(vec![7u8; 10_000]);
        let frags = split(&payload, 1400);
        assert_eq!(frags.len(), 8);
        assert!(frags[..7].iter().all(|f| f.len() == 1400));
        assert_eq!(frags[7].len(), 10_000 - 7 * 1400);
    }

    #[test]
    fn split_empty_yields_one_fragment() {
        let frags = split(&Bytes::new(), 100);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].is_empty());
    }

    #[test]
    fn split_exact_multiple() {
        let frags = split(&Bytes::from(vec![0u8; 2800]), 1400);
        assert_eq!(frags.len(), 2);
    }

    #[test]
    fn reassemble_out_of_order_with_duplicates() {
        let payload = Bytes::from((0..5000u32).map(|i| (i % 256) as u8).collect::<Vec<u8>>());
        let frags = split(&payload, 999);
        let mut r = Reassembly::new(frags.len());
        let order = [4, 0, 2, 2, 1, 3, 5];
        for &i in &order {
            r.insert(i, frags[i].clone()).unwrap();
        }
        assert!(r.complete());
        assert_eq!(r.assemble(), payload);
    }

    #[test]
    fn single_fragment_assemble_is_zero_copy() {
        let payload = Bytes::from_static(b"fits in one fragment");
        let frags = split(&payload, 1400);
        assert_eq!(frags.len(), 1);
        let mut r = Reassembly::new(1);
        r.insert(0, frags[0].clone()).unwrap();
        let out = r.assemble();
        assert_eq!(out, payload);
        // Same backing storage, not a copy.
        assert_eq!(out.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn missing_indices() {
        let mut r = Reassembly::new(4);
        r.insert(1, Bytes::from_static(b"x")).unwrap();
        r.insert(3, Bytes::from_static(b"y")).unwrap();
        assert_eq!(r.missing(), vec![0, 2]);
        assert!(!r.complete());
        assert_eq!(r.received(), 2);
    }

    #[test]
    fn out_of_range_index_rejected() {
        let mut r = Reassembly::new(2);
        assert_eq!(r.insert(5, Bytes::new()).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn set_delivers_on_completion_only() {
        let payload = Bytes::from(vec![1u8; 300]);
        let frags = split(&payload, 100);
        let mut set = ReassemblySet::new();
        assert!(set.insert(9, 0, 3, frags[0].clone()).unwrap().is_none());
        assert!(set.insert(9, 2, 3, frags[2].clone()).unwrap().is_none());
        assert_eq!(set.in_progress(), 1);
        let done = set.insert(9, 1, 3, frags[1].clone()).unwrap().unwrap();
        assert_eq!(done, payload);
        assert_eq!(set.in_progress(), 0);
        // A late duplicate fragment recreates a buffer (protocols guard
        // against this with their own dedup); verify it does not panic.
        assert!(set.insert(9, 1, 3, frags[1].clone()).unwrap().is_none());
    }

    #[test]
    fn set_rejects_inconsistent_count() {
        let mut set = ReassemblySet::new();
        set.insert(1, 0, 3, Bytes::new()).unwrap();
        assert_eq!(set.insert(1, 1, 4, Bytes::new()).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn forget_discards_state() {
        let mut set = ReassemblySet::new();
        set.insert(1, 0, 2, Bytes::new()).unwrap();
        set.forget(1);
        assert_eq!(set.in_progress(), 0);
        assert!(set.missing(1).is_empty());
    }
}
