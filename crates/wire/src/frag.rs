//! Message fragmentation and reassembly.
//!
//! The client library provides "message passing, routing ...,
//! fragmentation, data conversion" (§3.4). Messages larger than the
//! path MTU are split into numbered fragments; the receiver reassembles
//! them tolerant of loss, duplication and reordering (retransmission is
//! the protocol layer's job).
//!
//! Partial reassembly state is bounded two ways: a per-peer cap on
//! concurrent in-progress messages ([`MAX_PARTIAL_MSGS`], stalest
//! evicted first) and virtual-time eviction of entries that have seen
//! no fresh fragment for longer than the owning driver's patience
//! ([`ReassemblySet::evict_stale`]) — a sender that never completes
//! its messages, or a loss-burst chaos plan, costs bounded memory.

use bytes::Bytes;
use std::collections::HashMap;

use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::time::{SimDuration, SimTime};

/// Split `payload` into chunks of at most `frag_size` bytes.
/// A zero-length payload still produces one (empty) fragment so the
/// message exists on the wire. A zero `frag_size` (hostile or
/// misconfigured MTU state) is a counted `Protocol` error, not a
/// panic.
pub fn split(payload: &Bytes, frag_size: usize) -> SnipeResult<Vec<Bytes>> {
    if frag_size == 0 {
        return Err(SnipeError::Protocol("zero fragment size".into()));
    }
    if payload.is_empty() {
        return Ok(vec![Bytes::new()]);
    }
    let mut out = Vec::with_capacity(payload.len().div_ceil(frag_size));
    let mut off = 0;
    while off < payload.len() {
        let end = (off + frag_size).min(payload.len());
        out.push(payload.slice(off..end));
        off = end;
    }
    Ok(out)
}

/// Reassembly buffer for one message.
#[derive(Debug)]
pub struct Reassembly {
    frags: Vec<Option<Bytes>>,
    received: usize,
    /// When the last *fresh* fragment arrived (stale-entry eviction).
    last_activity: SimTime,
}

impl Reassembly {
    /// For a message of `count` fragments.
    pub fn new(count: usize) -> Reassembly {
        Reassembly {
            frags: (0..count).map(|_| None).collect(),
            received: 0,
            last_activity: SimTime::ZERO,
        }
    }

    /// Store one fragment. A duplicate whose bytes match the stored
    /// copy is ignored; a duplicate whose bytes *differ* is a
    /// `Protocol` error (a corrupted or forged retransmission — the
    /// first copy is kept, the conflict is surfaced so the stack can
    /// count it). Errors on index out of range too (hostile sender).
    pub fn insert(&mut self, idx: usize, data: Bytes) -> SnipeResult<()> {
        if idx >= self.frags.len() {
            return Err(SnipeError::Protocol(format!(
                "fragment index {idx} out of range (count {})",
                self.frags.len()
            )));
        }
        match &self.frags[idx] {
            None => {
                self.frags[idx] = Some(data);
                self.received += 1;
            }
            Some(existing) if *existing != data => {
                return Err(SnipeError::Protocol(format!(
                    "duplicate fragment {idx} with conflicting bytes ({} vs {})",
                    existing.len(),
                    data.len()
                )));
            }
            Some(_) => {} // benign duplicate
        }
        Ok(())
    }

    /// Is a fragment present?
    pub fn has(&self, idx: usize) -> bool {
        self.frags.get(idx).is_some_and(|f| f.is_some())
    }

    /// All fragments present?
    pub fn complete(&self) -> bool {
        self.received == self.frags.len()
    }

    /// Fragments received so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Total fragments expected.
    pub fn expected(&self) -> usize {
        self.frags.len()
    }

    /// Indices still missing (for SACK generation).
    pub fn missing(&self) -> Vec<u32> {
        self.frags.iter().enumerate().filter(|(_, f)| f.is_none()).map(|(i, _)| i as u32).collect()
    }

    /// Concatenate into the original message.
    ///
    /// # Panics
    /// Panics if not [`Self::complete`].
    pub fn assemble(mut self) -> Bytes {
        assert!(self.complete(), "assembling incomplete message");
        // A message that fit in one fragment needs no concatenation:
        // hand the original buffer back without copying (the common
        // case for sub-MTU traffic).
        if self.frags.len() == 1 {
            return self.frags[0].take().expect("complete");
        }
        let total: usize = self.frags.iter().map(|f| f.as_ref().expect("complete").len()).sum();
        let mut out = Vec::with_capacity(total);
        for f in self.frags {
            out.extend_from_slice(&f.expect("complete"));
        }
        Bytes::from(out)
    }
}

/// Most fragments one message may claim. A hostile DATA packet carries
/// an arbitrary 32-bit count; without this bound a single forged header
/// makes [`Reassembly::new`] allocate gigabytes before any payload
/// arrives. 64 Ki fragments × the ~1400-byte MTU is a ~90 MB message —
/// far beyond anything the workloads send.
pub const MAX_FRAGMENTS: usize = 1 << 16;

/// Most concurrently in-progress messages one peer may hold. A
/// well-behaved SRUDP sender can have at most `window` fragments in
/// flight (64 by default), so even one-fragment messages cannot
/// legitimately exceed the window; 256 leaves generous slack for
/// reordering while keeping a sender that opens messages and never
/// finishes them to a bounded footprint.
pub const MAX_PARTIAL_MSGS: usize = 256;

/// Reassembly across many concurrent messages from one peer,
/// capped at [`MAX_PARTIAL_MSGS`] in-progress entries.
#[derive(Debug, Default)]
pub struct ReassemblySet {
    msgs: HashMap<u64, Reassembly>,
}

impl ReassemblySet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fragment of message `msg_id` at virtual time `now`;
    /// returns the full message once complete (and forgets the
    /// buffer). A *fresh* fragment stamps the entry's last-activity
    /// clock (duplicates do not, so a retransmit loop cannot keep a
    /// dead entry alive). When the set is at [`MAX_PARTIAL_MSGS`] and
    /// `msg_id` is new, the stalest entry is evicted to make room.
    pub fn insert(
        &mut self,
        now: SimTime,
        msg_id: u64,
        idx: usize,
        count: usize,
        data: Bytes,
    ) -> SnipeResult<Option<Bytes>> {
        if count == 0 {
            return Err(SnipeError::Protocol("zero fragment count".into()));
        }
        if count > MAX_FRAGMENTS {
            return Err(SnipeError::Protocol(format!(
                "fragment count {count} exceeds limit {MAX_FRAGMENTS}"
            )));
        }
        // Validate before the entry exists: a bogus index must not
        // leave an empty reassembly buffer behind (state poisoning).
        if idx >= count {
            return Err(SnipeError::Protocol(format!(
                "fragment index {idx} out of range (count {count})"
            )));
        }
        if !self.msgs.contains_key(&msg_id) && self.msgs.len() >= MAX_PARTIAL_MSGS {
            if let Some(stalest) = self.stalest() {
                self.msgs.remove(&stalest);
            }
        }
        let r = self.msgs.entry(msg_id).or_insert_with(|| Reassembly::new(count));
        if r.expected() != count {
            return Err(SnipeError::Protocol(format!(
                "fragment count changed for msg {msg_id}: {} vs {count}",
                r.expected()
            )));
        }
        let before = r.received;
        r.insert(idx, data)?;
        if r.received != before {
            r.last_activity = now;
        }
        if r.complete() {
            let r = self.msgs.remove(&msg_id).expect("present");
            Ok(Some(r.assemble()))
        } else {
            Ok(None)
        }
    }

    /// The entry with the oldest last-activity stamp (ties broken by
    /// lowest msg id, so eviction order is deterministic).
    fn stalest(&self) -> Option<u64> {
        self.msgs.iter().map(|(id, r)| (r.last_activity, *id)).min().map(|(_, id)| id)
    }

    /// Evict the stalest entry and return its msg id. Lets an owning
    /// driver enforce the cap *before* inserting, so it can clean its
    /// own per-message side tables for the victim (the internal cap in
    /// [`Self::insert`] then never fires for such callers).
    pub fn evict_stalest(&mut self) -> Option<u64> {
        let id = self.stalest()?;
        self.msgs.remove(&id);
        Some(id)
    }

    /// Drop every entry whose last fresh fragment is older than `ttl`
    /// before `now`; returns the evicted message ids so the owning
    /// driver can clean its side tables. Drive this from a periodic
    /// timer with a `ttl` longer than the sender's give-up horizon:
    /// in-contract transfers are never evicted, only abandoned ones.
    pub fn evict_stale(&mut self, now: SimTime, ttl: SimDuration) -> Vec<u64> {
        let mut evicted: Vec<u64> = self
            .msgs
            .iter()
            .filter(|(_, r)| now.saturating_since(r.last_activity) > ttl)
            .map(|(id, _)| *id)
            .collect();
        evicted.sort_unstable();
        for id in &evicted {
            self.msgs.remove(id);
        }
        evicted
    }

    /// Is a specific fragment already present?
    pub fn has(&self, msg_id: u64, idx: usize) -> bool {
        self.msgs.get(&msg_id).is_some_and(|r| r.has(idx))
    }

    /// Fragments received so far for a message (0 if unknown).
    pub fn received(&self, msg_id: u64) -> usize {
        self.msgs.get(&msg_id).map(|r| r.received()).unwrap_or(0)
    }

    /// Remove a message's partial state and return the present
    /// fragments with their indices (FEC reconstruction takes over
    /// once a share quorum is in, before the buffer is "complete").
    pub fn take(&mut self, msg_id: u64) -> Option<Vec<(u32, Bytes)>> {
        self.msgs.remove(&msg_id).map(|r| {
            r.frags.into_iter().enumerate().filter_map(|(i, f)| f.map(|b| (i as u32, b))).collect()
        })
    }

    /// Fragments still missing for a message (empty if unknown —
    /// either never seen or already delivered).
    pub fn missing(&self, msg_id: u64) -> Vec<u32> {
        self.msgs.get(&msg_id).map(|r| r.missing()).unwrap_or_default()
    }

    /// Number of in-progress messages.
    pub fn in_progress(&self) -> usize {
        self.msgs.len()
    }

    /// Drop the partial state of a message (peer gave up).
    pub fn forget(&mut self, msg_id: u64) {
        self.msgs.remove(&msg_id);
    }

    /// Export all partial reassembly state (for migration checkpoints).
    pub fn export(&self) -> Vec<(u64, Vec<Option<Bytes>>)> {
        let mut v: Vec<(u64, Vec<Option<Bytes>>)> =
            self.msgs.iter().map(|(id, r)| (*id, r.frags.clone())).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Import previously exported state (replaces any current state for
    /// the same message ids). Entries are stamped with `now`: a
    /// restored partial gets a full TTL on its new host before
    /// stale-eviction may claim it.
    pub fn import(&mut self, now: SimTime, state: Vec<(u64, Vec<Option<Bytes>>)>) {
        for (id, frags) in state {
            let received = frags.iter().filter(|f| f.is_some()).count();
            self.msgs.insert(id, Reassembly { frags, received, last_activity: now });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn t(secs: u64) -> SimTime {
        SimTime::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn split_sizes() {
        let payload = Bytes::from(vec![7u8; 10_000]);
        let frags = split(&payload, 1400).unwrap();
        assert_eq!(frags.len(), 8);
        assert!(frags[..7].iter().all(|f| f.len() == 1400));
        assert_eq!(frags[7].len(), 10_000 - 7 * 1400);
    }

    #[test]
    fn split_empty_yields_one_fragment() {
        let frags = split(&Bytes::new(), 100).unwrap();
        assert_eq!(frags.len(), 1);
        assert!(frags[0].is_empty());
    }

    #[test]
    fn split_exact_multiple() {
        let frags = split(&Bytes::from(vec![0u8; 2800]), 1400).unwrap();
        assert_eq!(frags.len(), 2);
    }

    #[test]
    fn split_zero_frag_size_is_an_error_not_a_panic() {
        let err = split(&Bytes::from_static(b"payload"), 0).unwrap_err();
        assert_eq!(err.kind(), "protocol");
    }

    #[test]
    fn reassemble_out_of_order_with_duplicates() {
        let payload = Bytes::from((0..5000u32).map(|i| (i % 256) as u8).collect::<Vec<u8>>());
        let frags = split(&payload, 999).unwrap();
        let mut r = Reassembly::new(frags.len());
        let order = [4, 0, 2, 2, 1, 3, 5];
        for &i in &order {
            r.insert(i, frags[i].clone()).unwrap();
        }
        assert!(r.complete());
        assert_eq!(r.assemble(), payload);
    }

    #[test]
    fn conflicting_duplicate_is_a_protocol_error() {
        let mut r = Reassembly::new(2);
        r.insert(0, Bytes::from_static(b"original")).unwrap();
        // Matching duplicate: benign.
        r.insert(0, Bytes::from_static(b"original")).unwrap();
        // Same index, different bytes: corruption made visible.
        let err = r.insert(0, Bytes::from_static(b"tampered")).unwrap_err();
        assert_eq!(err.kind(), "protocol");
        // The first copy is kept.
        assert_eq!(r.received(), 1);
        r.insert(1, Bytes::from_static(b"rest")).unwrap();
        assert_eq!(&r.assemble()[..8], b"original");
    }

    #[test]
    fn single_fragment_assemble_is_zero_copy() {
        let payload = Bytes::from_static(b"fits in one fragment");
        let frags = split(&payload, 1400).unwrap();
        assert_eq!(frags.len(), 1);
        let mut r = Reassembly::new(1);
        r.insert(0, frags[0].clone()).unwrap();
        let out = r.assemble();
        assert_eq!(out, payload);
        // Same backing storage, not a copy.
        assert_eq!(out.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn missing_indices() {
        let mut r = Reassembly::new(4);
        r.insert(1, Bytes::from_static(b"x")).unwrap();
        r.insert(3, Bytes::from_static(b"y")).unwrap();
        assert_eq!(r.missing(), vec![0, 2]);
        assert!(!r.complete());
        assert_eq!(r.received(), 2);
    }

    #[test]
    fn out_of_range_index_rejected() {
        let mut r = Reassembly::new(2);
        assert_eq!(r.insert(5, Bytes::new()).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn set_delivers_on_completion_only() {
        let payload = Bytes::from(vec![1u8; 300]);
        let frags = split(&payload, 100).unwrap();
        let mut set = ReassemblySet::new();
        assert!(set.insert(T0, 9, 0, 3, frags[0].clone()).unwrap().is_none());
        assert!(set.insert(T0, 9, 2, 3, frags[2].clone()).unwrap().is_none());
        assert_eq!(set.in_progress(), 1);
        let done = set.insert(T0, 9, 1, 3, frags[1].clone()).unwrap().unwrap();
        assert_eq!(done, payload);
        assert_eq!(set.in_progress(), 0);
        // A late duplicate fragment recreates a buffer (protocols guard
        // against this with their own dedup); verify it does not panic.
        assert!(set.insert(T0, 9, 1, 3, frags[1].clone()).unwrap().is_none());
    }

    #[test]
    fn set_rejects_inconsistent_count() {
        let mut set = ReassemblySet::new();
        set.insert(T0, 1, 0, 3, Bytes::new()).unwrap();
        assert_eq!(set.insert(T0, 1, 1, 4, Bytes::new()).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn forget_discards_state() {
        let mut set = ReassemblySet::new();
        set.insert(T0, 1, 0, 2, Bytes::new()).unwrap();
        set.forget(1);
        assert_eq!(set.in_progress(), 0);
        assert!(set.missing(1).is_empty());
    }

    #[test]
    fn take_returns_present_shares_with_indices() {
        let mut set = ReassemblySet::new();
        set.insert(T0, 5, 2, 4, Bytes::from_static(b"c")).unwrap();
        set.insert(T0, 5, 0, 4, Bytes::from_static(b"a")).unwrap();
        assert_eq!(set.received(5), 2);
        let taken = set.take(5).unwrap();
        assert_eq!(taken, vec![(0, Bytes::from_static(b"a")), (2, Bytes::from_static(b"c"))]);
        assert_eq!(set.in_progress(), 0);
        assert!(set.take(5).is_none());
    }

    #[test]
    fn partial_count_is_capped_with_stalest_evicted_first() {
        let mut set = ReassemblySet::new();
        for id in 0..MAX_PARTIAL_MSGS as u64 {
            // Later ids are fresher.
            set.insert(SimTime::from_nanos(id), id, 0, 2, Bytes::new()).unwrap();
        }
        assert_eq!(set.in_progress(), MAX_PARTIAL_MSGS);
        // One more: msg 0 (stalest) makes room.
        set.insert(SimTime::from_nanos(1 << 40), 1 << 40, 0, 2, Bytes::new()).unwrap();
        assert_eq!(set.in_progress(), MAX_PARTIAL_MSGS);
        assert!(set.missing(0).is_empty(), "stalest entry should have been evicted");
        assert_eq!(set.missing(1).len(), 1, "fresher entries survive");
    }

    #[test]
    fn stale_entries_are_evicted_by_virtual_time() {
        let mut set = ReassemblySet::new();
        let ttl = SimDuration::from_secs(60);
        set.insert(SimTime::from_nanos(0), 1, 0, 2, Bytes::new()).unwrap();
        set.insert(t(50), 2, 0, 3, Bytes::new()).unwrap();
        // At t=30s nothing is older than the ttl.
        assert!(set.evict_stale(t(30), ttl).is_empty());
        // At t=61s msg 1 (last activity t=0) is stale, msg 2 is not.
        assert_eq!(set.evict_stale(t(61), ttl), vec![1]);
        assert_eq!(set.in_progress(), 1);
        // A fresh fragment resets the clock: msg 2 refreshed at t=70s
        // survives the t=120s sweep.
        set.insert(t(70), 2, 1, 3, Bytes::new()).unwrap();
        assert!(set.evict_stale(t(120), ttl).is_empty());
    }

    #[test]
    fn duplicates_do_not_refresh_the_activity_clock() {
        let mut set = ReassemblySet::new();
        let ttl = SimDuration::from_secs(60);
        set.insert(t(0), 7, 0, 2, Bytes::from_static(b"x")).unwrap();
        // The same fragment replayed much later is not "activity".
        set.insert(t(100), 7, 0, 2, Bytes::from_static(b"x")).unwrap();
        assert_eq!(set.evict_stale(t(110), ttl), vec![7]);
    }

    #[test]
    fn import_stamps_entries_with_now() {
        let mut set = ReassemblySet::new();
        set.insert(SimTime::ZERO, 3, 0, 2, Bytes::from_static(b"x")).unwrap();
        let state = set.export();
        let mut restored = ReassemblySet::new();
        restored.import(t(1000), state);
        assert_eq!(restored.received(3), 1);
        // Freshly imported: survives a sweep that would evict a ZERO stamp.
        let ttl = SimDuration::from_secs(60);
        assert!(restored.evict_stale(t(1030), ttl).is_empty());
    }
}
