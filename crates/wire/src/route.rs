//! Multi-path route management.
//!
//! The paper (§6): the communications module "provided the ability to
//! switch routes/interfaces as links failed without user applications
//! intervention". A [`RouteManager`] holds the ranked candidate
//! networks to one peer (learned from the peer host's interface
//! metadata in RC, §5.2.1) and rotates to the next candidate when the
//! transport reports consecutive timeouts.

use snipe_util::id::NetId;

/// Timeouts against a peer before the route is rotated.
pub const FAILOVER_THRESHOLD: u32 = 2;

/// Ranked candidate routes to one peer.
#[derive(Clone, Debug, Default)]
pub struct RouteManager {
    /// Candidates, best first. Empty = let the simulator route.
    candidates: Vec<NetId>,
    current: usize,
    /// Count of rotations performed (for tests/benches).
    pub failovers: u32,
}

impl RouteManager {
    /// With an explicit candidate ranking.
    pub fn new(candidates: Vec<NetId>) -> RouteManager {
        RouteManager { candidates, current: 0, failovers: 0 }
    }

    /// No pinning: default routing.
    pub fn unpinned() -> RouteManager {
        RouteManager::default()
    }

    /// The currently preferred network, if any are pinned.
    pub fn current(&self) -> Option<NetId> {
        self.candidates.get(self.current).copied()
    }

    /// All candidates.
    pub fn candidates(&self) -> &[NetId] {
        &self.candidates
    }

    /// Replace the candidate set (fresh metadata), keeping the current
    /// choice when it is still present.
    pub fn update(&mut self, candidates: Vec<NetId>) {
        let keep = self.current();
        self.candidates = candidates;
        self.current = keep
            .and_then(|n| self.candidates.iter().position(|&c| c == n))
            .unwrap_or(0);
    }

    /// Rotate to the next candidate (wraps). Returns the new choice.
    pub fn rotate(&mut self) -> Option<NetId> {
        if self.candidates.is_empty() {
            return None;
        }
        self.current = (self.current + 1) % self.candidates.len();
        self.failovers += 1;
        self.current()
    }

    /// Feed the transport's consecutive-timeout count; rotates when the
    /// threshold is crossed. Returns `true` if a rotation happened (the
    /// caller should reset the transport's counter).
    pub fn report_timeouts(&mut self, consecutive: u32) -> bool {
        if consecutive >= FAILOVER_THRESHOLD && self.candidates.len() > 1 {
            self.rotate();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NetId {
        NetId(i)
    }

    #[test]
    fn rotation_cycles() {
        let mut r = RouteManager::new(vec![n(1), n(2), n(3)]);
        assert_eq!(r.current(), Some(n(1)));
        assert_eq!(r.rotate(), Some(n(2)));
        assert_eq!(r.rotate(), Some(n(3)));
        assert_eq!(r.rotate(), Some(n(1)));
        assert_eq!(r.failovers, 3);
    }

    #[test]
    fn unpinned_never_rotates() {
        let mut r = RouteManager::unpinned();
        assert_eq!(r.current(), None);
        assert_eq!(r.rotate(), None);
        assert!(!r.report_timeouts(10));
    }

    #[test]
    fn threshold_behaviour() {
        let mut r = RouteManager::new(vec![n(1), n(2)]);
        assert!(!r.report_timeouts(FAILOVER_THRESHOLD - 1));
        assert_eq!(r.current(), Some(n(1)));
        assert!(r.report_timeouts(FAILOVER_THRESHOLD));
        assert_eq!(r.current(), Some(n(2)));
    }

    #[test]
    fn single_candidate_does_not_flap() {
        let mut r = RouteManager::new(vec![n(1)]);
        assert!(!r.report_timeouts(10));
        assert_eq!(r.current(), Some(n(1)));
    }

    #[test]
    fn update_preserves_current_when_possible() {
        let mut r = RouteManager::new(vec![n(1), n(2)]);
        r.rotate(); // now n(2)
        r.update(vec![n(3), n(2)]);
        assert_eq!(r.current(), Some(n(2)));
        r.update(vec![n(4), n(5)]);
        assert_eq!(r.current(), Some(n(4)));
    }
}
