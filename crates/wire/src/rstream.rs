//! RSTREAM — the reliable byte-stream protocol (TCP substitute).
//!
//! The paper's communications module "supported a selective re-send UDP
//! protocol as well as TCP/IP" (§6). The authors used the kernel's TCP;
//! our substrate has no kernel, so this module re-implements a minimal
//! TCP-shaped protocol from scratch: three-way handshake, cumulative
//! ACKs over byte offsets, a fixed flow-control window, RTO and fast
//! retransmit on triple duplicate ACKs, plus 4-byte length framing so
//! the stream carries discrete messages.
//!
//! Connections are endpoint-addressed and — deliberately, unlike
//! [`crate::srudp`] — do **not** survive process migration; experiment
//! E5 uses that contrast.

use std::collections::{BTreeMap, HashMap, VecDeque};

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_netsim::trace::{self, TraceKind};
use snipe_util::codec::{Decoder, Encoder};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::time::{SimDuration, SimTime};

use crate::timers::TimerWheel;
use crate::Out;

/// RSTREAM tuning knobs.
#[derive(Clone, Debug)]
pub struct RstreamConfig {
    /// Maximum segment size (payload bytes per DATA packet).
    pub mss: usize,
    /// Flow-control window in bytes.
    pub window: usize,
    /// Initial retransmission timeout.
    pub rto_initial: SimDuration,
    /// RTO clamp floor / ceiling.
    pub rto_min: SimDuration,
    /// RTO clamp ceiling.
    pub rto_max: SimDuration,
    /// Abort the connection after this many consecutive RTO expiries.
    pub max_timeouts: u32,
}

impl Default for RstreamConfig {
    fn default() -> Self {
        RstreamConfig {
            mss: 1400,
            window: 64 * 1400,
            rto_initial: SimDuration::from_millis(100),
            rto_min: SimDuration::from_millis(2),
            rto_max: SimDuration::from_secs(4),
            max_timeouts: 10,
        }
    }
}

/// Connection identifier (chosen by the initiator, shared by both ends).
pub type ConnId = u64;

const KIND_SYN: u8 = 1;
const KIND_SYNACK: u8 = 2;
const KIND_DATA: u8 = 3;
const KIND_ACK: u8 = 4;
const KIND_FIN: u8 = 5;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    SynSent,
    Established,
    Closed,
}

struct Conn {
    peer: Endpoint,
    state: State,
    // Sender.
    snd_buf: VecDeque<u8>,
    /// Stream offset of snd_buf[0] (== lowest unacked byte).
    snd_una: u64,
    /// Next offset to transmit.
    snd_nxt: u64,
    sent_at: HashMap<u64, (SimTime, bool)>, // segment start -> (time, retransmitted)
    dup_acks: u32,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    timeouts: u32,
    /// Loss-recovery horizon (NewReno): after an RTO, ACKs below this
    /// offset are partial — the hole extends further, so the next
    /// unacked segment is retransmitted immediately instead of waiting
    /// out another full (escalated) RTO per segment.
    recover: u64,
    // Receiver.
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Bytes>,
    rcv_buf: Vec<u8>,
    /// Messages waiting in snd_buf before the handshake completes.
    connected: bool,
}

impl Conn {
    fn new(peer: Endpoint, state: State, cfg: &RstreamConfig) -> Conn {
        Conn {
            peer,
            state,
            snd_buf: VecDeque::new(),
            snd_una: 0,
            snd_nxt: 0,
            sent_at: HashMap::new(),
            dup_acks: 0,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: cfg.rto_initial,
            timeouts: 0,
            recover: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            rcv_buf: Vec::new(),
            connected: state == State::Established,
        }
    }
}

/// Counters for benches and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RstreamStats {
    /// DATA segments first-transmitted.
    pub segments_sent: u64,
    /// Retransmitted segments (RTO + fast retransmit).
    pub retransmits: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Messages delivered to the application.
    pub delivered: u64,
    /// Connections aborted.
    pub aborted: u64,
}

/// The RSTREAM endpoint: many connections, client and server roles.
pub struct Rstream {
    cfg: RstreamConfig,
    conns: HashMap<ConnId, Conn>,
    /// Per-connection RTO deadlines, shared-wheel scheduled; the only
    /// timer source in this driver.
    wheel: TimerWheel<ConnId>,
    out: Vec<Out>,
    stats: RstreamStats,
    next_conn_seed: u64,
}

impl Rstream {
    /// New endpoint. `seed` randomizes connection ids.
    pub fn new(cfg: RstreamConfig, seed: u64) -> Rstream {
        Rstream {
            cfg,
            conns: HashMap::new(),
            wheel: TimerWheel::new(),
            out: Vec::new(),
            stats: RstreamStats::default(),
            next_conn_seed: seed,
        }
    }

    /// Counters.
    pub fn stats(&self) -> RstreamStats {
        self.stats
    }

    /// Open a connection to `peer`. Data may be queued immediately; it
    /// flows once the handshake completes.
    pub fn connect(&mut self, now: SimTime, peer: Endpoint) -> ConnId {
        // Deterministic but distinct ids.
        self.next_conn_seed =
            self.next_conn_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let id = self.next_conn_seed | 1;
        let conn = Conn::new(peer, State::SynSent, &self.cfg.clone());
        // The handshake has no ACK clock: arm the wheel so a lost SYN
        // is retransmitted instead of wedging the connection.
        self.wheel.schedule(id, now + conn.rto);
        self.conns.insert(id, conn);
        Self::emit_syn(&mut self.out, peer, id);
        id
    }

    fn emit_syn(out: &mut Vec<Out>, peer: Endpoint, id: ConnId) {
        let mut enc = Encoder::new();
        enc.put_u8(KIND_SYN);
        enc.put_u64(id);
        out.push(Out::Send { to: peer, via: None, spray: None, bytes: enc.finish() });
    }

    /// Is the connection established?
    pub fn is_established(&self, id: ConnId) -> bool {
        self.conns.get(&id).is_some_and(|c| c.state == State::Established)
    }

    /// Is the connection closed/aborted (or unknown)?
    pub fn is_closed(&self, id: ConnId) -> bool {
        self.conns.get(&id).is_none_or(|c| c.state == State::Closed)
    }

    /// Bytes not yet acknowledged by the peer.
    pub fn unacked_bytes(&self, id: ConnId) -> usize {
        self.conns.get(&id).map_or(0, |c| c.snd_buf.len())
    }

    /// Queue a framed message on the stream.
    pub fn send_message(&mut self, now: SimTime, id: ConnId, msg: &[u8]) -> SnipeResult<()> {
        let conn = self
            .conns
            .get_mut(&id)
            .ok_or_else(|| SnipeError::WrongState(format!("unknown connection {id:#x}")))?;
        if conn.state == State::Closed {
            return Err(SnipeError::WrongState("connection closed".into()));
        }
        conn.snd_buf.extend((msg.len() as u32).to_be_bytes());
        conn.snd_buf.extend(msg.iter().copied());
        self.pump(now, id);
        Ok(())
    }

    /// Close a connection gracefully (FIN); queued data is flushed first
    /// by the peer's ACK progress, but this simple FIN is immediate.
    pub fn close(&mut self, id: ConnId) {
        if let Some(c) = self.conns.get_mut(&id) {
            if c.state != State::Closed {
                let mut enc = Encoder::new();
                enc.put_u8(KIND_FIN);
                enc.put_u64(id);
                self.out.push(Out::Send {
                    to: c.peer,
                    via: None,
                    spray: None,
                    bytes: enc.finish(),
                });
                c.state = State::Closed;
                self.wheel.cancel(id);
            }
        }
    }

    /// Abort every connection to a peer (e.g. the peer host died).
    pub fn abort_peer(&mut self, peer: Endpoint) {
        for (id, c) in self.conns.iter_mut() {
            if c.peer == peer && c.state != State::Closed {
                c.state = State::Closed;
                self.stats.aborted += 1;
                self.wheel.cancel(*id);
            }
        }
    }

    /// Earliest RTO deadline across connections.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.wheel.next_deadline()
    }

    /// Drain queued output actions.
    pub fn drain(&mut self) -> Vec<Out> {
        std::mem::take(&mut self.out)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_data(
        out: &mut Vec<Out>,
        stats: &mut RstreamStats,
        now: SimTime,
        conn: &Conn,
        id: ConnId,
        offset: u64,
        payload: &[u8],
        retx: bool,
    ) {
        let mut enc = Encoder::with_capacity(payload.len() + 24);
        enc.put_u8(KIND_DATA);
        enc.put_u64(id);
        enc.put_u64(offset);
        enc.put_bytes(payload);
        if retx {
            stats.retransmits += 1;
            if trace::enabled() {
                // RSTREAM peers are endpoints, not keyed nodes: the
                // connection id stands in as the peer discriminator.
                trace::record(now, TraceKind::Retransmit { peer: id, len: payload.len() as u32 });
            }
        } else {
            stats.segments_sent += 1;
        }
        out.push(Out::Send { to: conn.peer, via: None, spray: None, bytes: enc.finish() });
    }

    fn pump(&mut self, now: SimTime, id: ConnId) {
        let cfg_mss = self.cfg.mss;
        let cfg_window = self.cfg.window;
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.state != State::Established {
            return;
        }
        while (conn.snd_nxt - conn.snd_una) < cfg_window as u64 {
            let offset_in_buf = (conn.snd_nxt - conn.snd_una) as usize;
            if offset_in_buf >= conn.snd_buf.len() {
                break;
            }
            let take = cfg_mss
                .min(conn.snd_buf.len() - offset_in_buf)
                .min(cfg_window - (conn.snd_nxt - conn.snd_una) as usize);
            let seg: Vec<u8> =
                conn.snd_buf.iter().skip(offset_in_buf).take(take).copied().collect();
            let offset = conn.snd_nxt;
            conn.snd_nxt += take as u64;
            conn.sent_at.insert(offset, (now, false));
            Self::emit_data(&mut self.out, &mut self.stats, now, conn, id, offset, &seg, false);
            if self.wheel.deadline_of(id).is_none() {
                self.wheel.schedule(id, now + conn.rto);
            }
        }
    }

    /// Handle an incoming RSTREAM body.
    pub fn on_packet(&mut self, now: SimTime, from: Endpoint, body: Bytes) -> SnipeResult<()> {
        let mut dec = Decoder::new(body);
        let kind = dec.get_u8()?;
        let id = dec.get_u64()?;
        match kind {
            KIND_SYN => {
                // Passive open (every Rstream listens).
                let cfg = self.cfg.clone();
                self.conns.entry(id).or_insert_with(|| Conn::new(from, State::Established, &cfg));
                let mut enc = Encoder::new();
                enc.put_u8(KIND_SYNACK);
                enc.put_u64(id);
                self.out.push(Out::Send { to: from, via: None, spray: None, bytes: enc.finish() });
                Ok(())
            }
            KIND_SYNACK => {
                if let Some(c) = self.conns.get_mut(&id) {
                    if c.state == State::SynSent {
                        c.state = State::Established;
                        c.connected = true;
                        // Handshake retries must not count against the
                        // established connection's abort budget.
                        c.timeouts = 0;
                        c.rto = self.cfg.rto_initial;
                        self.wheel.cancel(id);
                        self.pump(now, id);
                    }
                }
                Ok(())
            }
            KIND_DATA => {
                let offset = dec.get_u64()?;
                let payload = dec.get_bytes()?;
                self.on_data(now, id, offset, payload);
                Ok(())
            }
            KIND_ACK => {
                let cum = dec.get_u64()?;
                self.on_ack(now, id, cum);
                Ok(())
            }
            KIND_FIN => {
                if let Some(c) = self.conns.get_mut(&id) {
                    c.state = State::Closed;
                    self.wheel.cancel(id);
                }
                Ok(())
            }
            k => Err(SnipeError::Protocol(format!("unknown RSTREAM kind {k}"))),
        }
    }

    fn on_data(&mut self, _now: SimTime, id: ConnId, offset: u64, payload: Bytes) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.state == State::Closed {
            return;
        }
        if offset >= conn.rcv_nxt {
            conn.ooo.insert(offset, payload);
            // Absorb in-order prefix.
            while let Some(entry) = conn.ooo.first_entry() {
                let seg_off = *entry.key();
                if seg_off > conn.rcv_nxt {
                    break;
                }
                let seg = entry.remove();
                if seg_off + seg.len() as u64 > conn.rcv_nxt {
                    let skip = (conn.rcv_nxt - seg_off) as usize;
                    conn.rcv_buf.extend_from_slice(&seg[skip..]);
                    conn.rcv_nxt = seg_off + seg.len() as u64;
                }
            }
        }
        // Cumulative ACK on every DATA.
        let mut enc = Encoder::new();
        enc.put_u8(KIND_ACK);
        enc.put_u64(id);
        enc.put_u64(conn.rcv_nxt);
        self.out.push(Out::Send { to: conn.peer, via: None, spray: None, bytes: enc.finish() });
        // Extract length-framed messages.
        let peer = conn.peer;
        loop {
            if conn.rcv_buf.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([
                conn.rcv_buf[0],
                conn.rcv_buf[1],
                conn.rcv_buf[2],
                conn.rcv_buf[3],
            ]) as usize;
            if conn.rcv_buf.len() < 4 + len {
                break;
            }
            let msg = Bytes::from(conn.rcv_buf[4..4 + len].to_vec());
            conn.rcv_buf.drain(..4 + len);
            self.stats.delivered += 1;
            self.out.push(Out::Deliver {
                proto: crate::frame::Proto::Rstream,
                from_key: id,
                from_ep: peer,
                msg,
            });
        }
    }

    fn on_ack(&mut self, now: SimTime, id: ConnId, cum: u64) {
        let cfg = self.cfg.clone();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if cum > conn.snd_una {
            // New data acked: RTT sample from the oldest acked segment.
            // Sorted so the sample is a function of the ack, not of
            // `sent_at`'s hash iteration order — an order-dependent
            // sample skews the RTO differently on every run, which
            // breaks seeded-replay determinism.
            let mut acked_segments: Vec<u64> =
                conn.sent_at.keys().filter(|&&o| o < cum).copied().collect();
            acked_segments.sort_unstable();
            let mut sample: Option<SimDuration> = None;
            for o in acked_segments {
                if let Some((t, retx)) = conn.sent_at.remove(&o) {
                    if !retx && sample.is_none() {
                        sample = Some(now.saturating_since(t));
                    }
                }
            }
            let advance = (cum - conn.snd_una) as usize;
            conn.snd_buf.drain(..advance.min(conn.snd_buf.len()));
            conn.snd_una = cum;
            conn.dup_acks = 0;
            conn.timeouts = 0;
            if let Some(s) = sample {
                match conn.srtt {
                    None => {
                        conn.srtt = Some(s);
                        conn.rttvar = s / 2;
                    }
                    Some(srtt) => {
                        let diff = if srtt > s { srtt - s } else { s - srtt };
                        conn.rttvar = (conn.rttvar * 3 + diff) / 4;
                        conn.srtt = Some((srtt * 7 + s) / 8);
                    }
                }
                conn.rto =
                    (conn.srtt.expect("set") + conn.rttvar * 4).clamp(cfg.rto_min, cfg.rto_max);
            }
            if conn.snd_una < conn.recover && conn.snd_una < conn.snd_nxt {
                // Partial ACK: the RTO-era hole extends past this
                // segment. Retransmit the next unacked segment now —
                // one segment per ACK keeps recovery self-clocked at
                // RTT pace rather than one segment per escalated RTO.
                let take = cfg.mss.min(conn.snd_buf.len());
                if take > 0 {
                    let seg: Vec<u8> = conn.snd_buf.iter().take(take).copied().collect();
                    let offset = conn.snd_una;
                    conn.sent_at.insert(offset, (now, true));
                    Self::emit_data(
                        &mut self.out,
                        &mut self.stats,
                        now,
                        conn,
                        id,
                        offset,
                        &seg,
                        true,
                    );
                }
            }
            if conn.snd_una == conn.snd_nxt {
                conn.recover = 0;
                self.wheel.cancel(id);
            } else {
                self.wheel.schedule(id, now + conn.rto);
            }
            self.pump(now, id);
        } else if cum == conn.snd_una && conn.snd_nxt > conn.snd_una {
            conn.dup_acks += 1;
            if conn.dup_acks == 3 {
                conn.dup_acks = 0;
                // Fast retransmit the first unacked segment.
                let take = cfg.mss.min(conn.snd_buf.len());
                if take > 0 {
                    let seg: Vec<u8> = conn.snd_buf.iter().take(take).copied().collect();
                    let offset = conn.snd_una;
                    conn.sent_at.insert(offset, (now, true));
                    self.stats.fast_retransmits += 1;
                    Self::emit_data(
                        &mut self.out,
                        &mut self.stats,
                        now,
                        conn,
                        id,
                        offset,
                        &seg,
                        true,
                    );
                }
            }
        }
    }

    /// Fire due RTO wheel tokens. Safe to call early or spuriously —
    /// a connection whose oldest outstanding segment has not actually
    /// outlived its RTO is re-armed without escalation.
    pub fn on_timer(&mut self, now: SimTime) {
        let mut due: Vec<ConnId> = Vec::new();
        self.wheel.expire_into(now, &mut due);
        due.sort_unstable();
        for id in due {
            self.fire_rto(now, id);
        }
    }

    fn fire_rto(&mut self, now: SimTime, id: ConnId) {
        let cfg = self.cfg.clone();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.state == State::SynSent {
            conn.timeouts += 1;
            if conn.timeouts >= cfg.max_timeouts {
                conn.state = State::Closed;
                self.stats.aborted += 1;
                return;
            }
            conn.rto = (conn.rto * 2).clamp(cfg.rto_min, cfg.rto_max);
            self.stats.retransmits += 1;
            Self::emit_syn(&mut self.out, conn.peer, id);
            self.wheel.schedule(id, now + conn.rto);
            return;
        }
        if conn.state != State::Established || conn.snd_una == conn.snd_nxt {
            return; // closed or fully acked: nothing outstanding
        }
        // Early/spurious fire: escalate only when the oldest
        // outstanding segment has genuinely outlived the RTO.
        if let Some(oldest) = conn.sent_at.values().map(|&(t, _)| t).min() {
            if oldest + conn.rto > now {
                self.wheel.schedule(id, oldest + conn.rto);
                return;
            }
        }
        conn.timeouts += 1;
        if conn.timeouts >= cfg.max_timeouts {
            conn.state = State::Closed;
            self.stats.aborted += 1;
            return;
        }
        conn.rto = (conn.rto * 2).clamp(cfg.rto_min, cfg.rto_max);
        conn.recover = conn.snd_nxt;
        let take = cfg.mss.min(conn.snd_buf.len());
        if take > 0 {
            let seg: Vec<u8> = conn.snd_buf.iter().take(take).copied().collect();
            let offset = conn.snd_una;
            conn.sent_at.insert(offset, (now, true));
            Self::emit_data(&mut self.out, &mut self.stats, now, conn, id, offset, &seg, true);
            self.wheel.schedule(id, now + conn.rto);
        }
    }
}

impl crate::driver::Driver for Rstream {
    fn proto(&self) -> crate::frame::Proto {
        crate::frame::Proto::Rstream
    }

    fn on_datagram(&mut self, now: SimTime, from: Endpoint, body: Bytes) -> SnipeResult<()> {
        self.on_packet(now, from, body)
    }

    fn on_timer(&mut self, now: SimTime) {
        Rstream::on_timer(self, now);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        Rstream::next_deadline(self)
    }

    fn drain(&mut self) -> Vec<Out> {
        Rstream::drain(self)
    }

    /// Connections are endpoint-addressed and deliberately die with
    /// the process (the E5 contrast case): the snapshot is an empty
    /// marker.
    fn export_state(&self) -> Bytes {
        Bytes::new()
    }

    /// Restores nothing, by design — see [`Driver::export_state`].
    ///
    /// [`Driver::export_state`]: crate::driver::Driver::export_state
    fn import_state(&mut self, _bytes: Bytes, _now: SimTime) -> SnipeResult<()> {
        Ok(())
    }

    fn quiescent(&self) -> bool {
        self.out.is_empty()
            && self.conns.values().all(|c| c.state != State::Established || c.snd_buf.is_empty())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_util::id::HostId;

    fn ep(h: u32, p: u16) -> Endpoint {
        Endpoint::new(HostId(h), p)
    }

    /// Shuttle packets between the two endpoints with an optional
    /// drop filter, firing timers whenever traffic stalls.
    fn run(
        a: &mut Rstream,
        b: &mut Rstream,
        a_ep: Endpoint,
        b_ep: Endpoint,
        drop: &mut dyn FnMut(usize) -> bool,
        steps: usize,
    ) -> (Vec<Bytes>, Vec<Bytes>) {
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        let mut now = SimTime::ZERO;
        let mut n = 0usize;
        for _ in 0..steps {
            let mut moved = false;
            for o in a.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        n += 1;
                        moved = true;
                        if !drop(n) {
                            b.on_packet(now, a_ep, bytes).unwrap();
                        }
                    }
                    Out::Deliver { msg, .. } => got_a.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            for o in b.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        n += 1;
                        moved = true;
                        if !drop(n) {
                            a.on_packet(now, b_ep, bytes).unwrap();
                        }
                    }
                    Out::Deliver { msg, .. } => got_b.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            if !moved {
                now = now + SimDuration::from_millis(50);
                a.on_timer(now);
                b.on_timer(now);
            }
            now = now + SimDuration::from_micros(100);
        }
        (got_a, got_b)
    }

    #[test]
    fn handshake_and_message() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        let mut b = Rstream::new(RstreamConfig::default(), 2);
        let id = a.connect(SimTime::ZERO, ep(1, 5));
        a.send_message(SimTime::ZERO, id, b"hello stream").unwrap();
        let (_, got_b) = run(&mut a, &mut b, ep(0, 5), ep(1, 5), &mut |_| false, 50);
        assert!(a.is_established(id));
        assert!(b.is_established(id));
        assert_eq!(got_b.len(), 1);
        assert_eq!(&got_b[0][..], b"hello stream");
    }

    #[test]
    fn large_transfer_segments() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        let mut b = Rstream::new(RstreamConfig::default(), 2);
        let id = a.connect(SimTime::ZERO, ep(1, 5));
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 253) as u8).collect();
        a.send_message(SimTime::ZERO, id, &payload).unwrap();
        let (_, got_b) = run(&mut a, &mut b, ep(0, 5), ep(1, 5), &mut |_| false, 2000);
        assert_eq!(got_b.len(), 1);
        assert_eq!(&got_b[0][..], &payload[..]);
        assert!(a.stats().segments_sent as usize >= payload.len() / 1400);
    }

    #[test]
    fn multiple_messages_in_order() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        let mut b = Rstream::new(RstreamConfig::default(), 2);
        let id = a.connect(SimTime::ZERO, ep(1, 5));
        for i in 0..10u8 {
            a.send_message(SimTime::ZERO, id, &[i; 100]).unwrap();
        }
        let (_, got_b) = run(&mut a, &mut b, ep(0, 5), ep(1, 5), &mut |_| false, 200);
        assert_eq!(got_b.len(), 10);
        for (i, m) in got_b.iter().enumerate() {
            assert_eq!(m[0] as usize, i);
        }
    }

    #[test]
    fn recovers_from_loss() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        let mut b = Rstream::new(RstreamConfig::default(), 2);
        let id = a.connect(SimTime::ZERO, ep(1, 5));
        let payload = vec![7u8; 50_000];
        a.send_message(SimTime::ZERO, id, &payload).unwrap();
        let (_, got_b) = run(&mut a, &mut b, ep(0, 5), ep(1, 5), &mut |n| n % 7 == 3, 5000);
        assert_eq!(got_b.len(), 1, "stats {:?}", a.stats());
        assert_eq!(&got_b[0][..], &payload[..]);
        assert!(a.stats().retransmits > 0);
    }

    #[test]
    fn bidirectional_streams() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        let mut b = Rstream::new(RstreamConfig::default(), 2);
        let id_ab = a.connect(SimTime::ZERO, ep(1, 5));
        let id_ba = b.connect(SimTime::ZERO, ep(0, 5));
        a.send_message(SimTime::ZERO, id_ab, b"ping").unwrap();
        b.send_message(SimTime::ZERO, id_ba, b"pong").unwrap();
        let (got_a, got_b) = run(&mut a, &mut b, ep(0, 5), ep(1, 5), &mut |_| false, 100);
        assert_eq!(&got_b[0][..], b"ping");
        assert_eq!(&got_a[0][..], b"pong");
    }

    #[test]
    fn send_on_unknown_or_closed_conn_errors() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        assert_eq!(a.send_message(SimTime::ZERO, 42, b"x").unwrap_err().kind(), "wrong-state");
        let id = a.connect(SimTime::ZERO, ep(1, 5));
        a.close(id);
        assert!(a.is_closed(id));
        assert!(a.send_message(SimTime::ZERO, id, b"x").is_err());
    }

    #[test]
    fn fin_closes_peer() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        let mut b = Rstream::new(RstreamConfig::default(), 2);
        let id = a.connect(SimTime::ZERO, ep(1, 5));
        let (_, _) = run(&mut a, &mut b, ep(0, 5), ep(1, 5), &mut |_| false, 20);
        a.close(id);
        for o in a.drain() {
            if let Out::Send { bytes, .. } = o {
                b.on_packet(SimTime::ZERO, ep(0, 5), bytes).unwrap();
            }
        }
        assert!(b.is_closed(id));
    }

    #[test]
    fn connection_aborts_after_repeated_timeouts() {
        let mut cfg = RstreamConfig::default();
        cfg.rto_initial = SimDuration::from_millis(1);
        cfg.rto_min = SimDuration::from_millis(1);
        cfg.rto_max = SimDuration::from_millis(1);
        cfg.max_timeouts = 3;
        let mut a = Rstream::new(cfg, 1);
        let id = a.connect(SimTime::ZERO, ep(1, 5));
        // SYN+SYNACK never happen; force establishment to test data path.
        a.on_packet(SimTime::ZERO, ep(1, 5), {
            let mut e = Encoder::new();
            e.put_u8(KIND_SYNACK);
            e.put_u64(id);
            e.finish()
        })
        .unwrap();
        a.send_message(SimTime::ZERO, id, b"into the void").unwrap();
        a.drain();
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now = now + SimDuration::from_millis(2);
            a.on_timer(now);
            a.drain();
        }
        assert!(a.is_closed(id));
        assert_eq!(a.stats().aborted, 1);
    }

    #[test]
    fn abort_peer_kills_connections() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        let id = a.connect(SimTime::ZERO, ep(1, 5));
        a.abort_peer(ep(1, 5));
        assert!(a.is_closed(id));
    }

    #[test]
    fn distinct_connection_ids() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        let i1 = a.connect(SimTime::ZERO, ep(1, 5));
        let i2 = a.connect(SimTime::ZERO, ep(1, 5));
        assert_ne!(i1, i2);
    }

    #[test]
    fn malformed_rejected() {
        let mut a = Rstream::new(RstreamConfig::default(), 1);
        assert!(a.on_packet(SimTime::ZERO, ep(1, 5), Bytes::new()).is_err());
        let mut e = Encoder::new();
        e.put_u8(99);
        e.put_u64(1);
        assert_eq!(
            a.on_packet(SimTime::ZERO, ep(1, 5), e.finish()).unwrap_err().kind(),
            "protocol"
        );
    }
}
