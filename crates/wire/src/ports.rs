//! Well-known SNIPE service ports.
//!
//! SNIPE components listen on fixed ports the way 1990s Unix daemons
//! did; client libraries learn everything else from RC metadata.

/// Per-host SNIPE daemon (§3.3).
pub const DAEMON: u16 = 1;
/// RC / metadata server (§3.1).
pub const RC_SERVER: u16 = 2;
/// Resource manager (§3.5).
pub const RESOURCE_MANAGER: u16 = 3;
/// File server (§3.2).
pub const FILE_SERVER: u16 = 4;
/// Multicast router service hosted by daemons (§5.4).
pub const MCAST_ROUTER: u16 = 5;
/// Console / HTTP gateway (§3.7).
pub const CONSOLE: u16 = 6;
/// First port used for spawned application tasks.
pub const TASK_BASE: u16 = 100;
