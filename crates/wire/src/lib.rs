//! # snipe-wire — SNIPE's multi-path communications sub-library
//!
//! The paper (§3, §6) describes a "separate non-PVM based communications
//! sub-library ... based initially upon the UDP and TCP Internet
//! protocols", providing:
//!
//! * a **selective re-send UDP protocol** ([`srudp`]) — SNIPE's own
//!   reliable datagram protocol, the headline series of Fig. 1;
//! * **TCP/IP** ([`rstream`]) — reproduced here as a from-scratch
//!   reliable byte stream with cumulative ACKs and fast retransmit;
//! * an **experimental multicast protocol** ([`mcast`]) — router-based
//!   reliable group messaging per §5.4;
//! * **fragmentation** ([`frag`]), erasure-coded share fragmentation
//!   ([`fec`]) and framing ([`frame`]);
//! * **multiple communication paths** with transparent failover
//!   ([`path`]): "the ability to switch routes/interfaces as links
//!   failed without user applications intervention" (§6);
//! * **system buffering** so "migrating or temporarily unavailable
//!   tasks did not result in lost messages" ([`stack`]).
//!
//! All protocol logic is *sans-IO*: state machines consume
//! `(now, packet)` and emit [`Out`] actions. Every transport
//! implements the [`driver::Driver`] trait, schedules deadlines on the
//! shared [`timers::TimerWheel`], and is registered with
//! [`stack::WireStack`] — a thin registry-plus-demux that seals
//! envelopes, applies [`path::PathSelector`] routing, and glues the
//! modules together for embedding in a `snipe-netsim` actor.

pub mod driver;
pub mod fec;
pub mod frag;
pub mod frame;
pub mod mcast;
pub mod path;
pub mod ports;
pub mod rstream;
pub mod srudp;
pub mod stack;
pub mod timers;

use bytes::Bytes;
use snipe_netsim::topology::Endpoint;
use snipe_util::id::NetId;
use snipe_util::time::SimTime;

/// Actions emitted by the sans-IO protocol state machines.
#[derive(Debug, Clone, PartialEq)]
pub enum Out {
    /// Transmit a datagram.
    Send {
        /// Destination endpoint.
        to: Endpoint,
        /// Pinned network (multi-path), or `None` for default routing.
        via: Option<NetId>,
        /// Share-spray index: when a driver emits erasure-coded shares
        /// ([`fec`]) it tags each with its share index, and the stack
        /// maps index `i` onto the `i mod k`-th of `k` distinct routes
        /// ([`path::PathSelector::select_k_distinct`]) so one gray
        /// link costs shares, not messages. `None` routes normally.
        spray: Option<u32>,
        /// Wire bytes.
        bytes: Bytes,
    },
    /// A complete application message arrived.
    Deliver {
        /// The protocol module that produced this delivery; a stack
        /// can run several drivers at once, and consumers dispatch on
        /// this tag (SRUDP app messages vs multicast group traffic).
        proto: frame::Proto,
        /// The stable node key of the logical sender (survives
        /// migration; see [`srudp`]).
        from_key: u64,
        /// The endpoint the final packet came from (the sender's
        /// current location).
        from_ep: Endpoint,
        /// Message payload.
        msg: Bytes,
    },
    /// The stack wants `on_timer` called no later than this instant.
    Wake {
        /// Deadline.
        at: SimTime,
    },
}
