//! The protocol-module ("Driver") abstraction.
//!
//! The paper's §3 communications layer is a set of pluggable protocol
//! modules behind one multiplexing library. This trait is that seam:
//! every wire transport — [`Srudp`](crate::srudp::Srudp),
//! [`Rstream`](crate::rstream::Rstream),
//! [`McastMember`](crate::mcast::McastMember) — is a sans-IO state
//! machine the [`WireStack`](crate::stack::WireStack) drives
//! uniformly:
//!
//! * datagrams whose envelope tag matches a registered driver are fed
//!   to [`Driver::on_datagram`];
//! * the stack's single timer arms at the min over
//!   [`Driver::next_deadline`] (each driver gets its deadlines from
//!   the shared [`TimerWheel`](crate::timers::TimerWheel)) and fans
//!   [`Driver::on_timer`] back out;
//! * emitted actions are collected via [`Driver::drain`], with `Send`
//!   bodies sealed under the driver's [`Proto`] tag and routed through
//!   the stack's [`PathSelector`](crate::path::PathSelector);
//! * migration snapshots concatenate each driver's
//!   [`Driver::export_state`] under its protocol tag, so a restored
//!   stack can hand each section back to the matching driver.
//!
//! `on_timer` must tolerate early or spurious firing (re-check your
//! own state, reschedule if nothing is due): that is what makes the
//! HostUp re-arm pattern — fire everything on resurrection, let
//! drivers sort out what was real — wedge-proof for every transport
//! at once instead of per-protocol hand patches.

use std::any::Any;

use bytes::Bytes;
use snipe_netsim::topology::Endpoint;
use snipe_util::error::SnipeResult;
use snipe_util::time::SimTime;

use crate::frame::Proto;
use crate::Out;

/// A wire protocol module, driven by [`WireStack`](crate::stack::WireStack).
///
/// `Send` because whole stacks live inside actors hosted on the sharded
/// engine, whose cores migrate across worker threads between rounds.
pub trait Driver: Any + Send {
    /// The envelope tag this driver speaks; the stack demuxes on it.
    fn proto(&self) -> Proto;

    /// An unsealed datagram body addressed to this driver arrived.
    fn on_datagram(&mut self, now: SimTime, from: Endpoint, body: Bytes) -> SnipeResult<()>;

    /// The stack's timer fired (possibly early or spuriously — this is
    /// always safe to call; drivers re-check their own deadlines).
    fn on_timer(&mut self, now: SimTime);

    /// Earliest instant at which this driver wants `on_timer`, if any.
    fn next_deadline(&self) -> Option<SimTime>;

    /// Take this driver's pending output actions. `Send` bodies are
    /// unsealed; the stack adds the envelope and route.
    fn drain(&mut self) -> Vec<Out>;

    /// Serialize migratable state (paired with [`Driver::import_state`]).
    fn export_state(&self) -> Bytes;

    /// Restore state exported by a previous incarnation and kick any
    /// recovery work (retransmits) as of `now`. Drivers that
    /// deliberately do not survive migration (Rstream: connections die
    /// with the process, the E5 contrast case) restore nothing.
    fn import_state(&mut self, bytes: Bytes, now: SimTime) -> SnipeResult<()>;

    /// True when nothing is buffered, unacked, or scheduled.
    fn quiescent(&self) -> bool;

    /// Downcast support for the stack's typed accessors.
    fn as_any(&self) -> &dyn Any;
    /// Downcast support for the stack's typed accessors.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
