//! The assembled wire stack embedded in every SNIPE process actor.
//!
//! [`WireStack`] is a registry-plus-demux over the wire protocol
//! modules (§3's "multiplexing library"):
//!
//! * every registered transport implements [`Driver`] — SRUDP is
//!   always present (reliable FIFO messaging keyed by stable node
//!   keys, §5.6); RSTREAM and member-side multicast dedup are opt-in
//!   via [`StackConfig`];
//! * incoming datagrams are demultiplexed on the [`crate::frame`]
//!   envelope tag: a registered driver consumes the body (completed
//!   messages come back as [`Out::Deliver`], tagged with the driver's
//!   protocol), anything else is surfaced as [`Incoming`] for
//!   host-level logic (raw datagrams, the daemon's multicast router);
//! * outgoing `Send`s are sealed under the emitting driver's tag and
//!   routed through one [`PathSelector`] (multi-path failover, §6);
//! * migration snapshots concatenate each driver's exported state
//!   under its protocol tag ([`WireStack::export_state`]).
//!
//! The stack is still sans-IO; a `snipe-netsim` actor drives it:
//! packets in via [`WireStack::on_datagram`], timer events via
//! [`WireStack::on_timer`], and emitted [`Out`] actions are translated
//! into `ctx.send`/`ctx.set_timer` calls by the embedding actor.

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_netsim::trace::{self, TraceKind};
use snipe_util::codec::{Decoder, Encoder};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::id::NetId;
use snipe_util::metrics::{CounterId, Registry};
use snipe_util::time::{SimDuration, SimTime};

use crate::driver::Driver;
use crate::frame::{open_classified, seal, FrameError, Proto};
use crate::mcast::McastMember;
use crate::path::PathSelector;
use crate::rstream::{Rstream, RstreamConfig};
use crate::srudp::{NodeKey, Srudp, SrudpConfig, SrudpStats};
use crate::Out;

/// Configuration for the assembled stack.
#[derive(Clone, Debug, Default)]
pub struct StackConfig {
    /// SRUDP tuning.
    pub srudp: SrudpConfig,
    /// Register an RSTREAM driver with this tuning (off by default:
    /// most SNIPE processes speak SRUDP only).
    pub rstream: Option<RstreamConfig>,
    /// Register a member-side multicast dedup driver; MCAST datagrams
    /// are then consumed and delivered (tagged [`Proto::Mcast`])
    /// instead of surfacing as [`Incoming::Mcast`].
    pub mcast_member: bool,
}

/// An incoming item after protocol demultiplexing.
///
/// Traffic for a *registered* driver is never surfaced here: the stack
/// consumes it internally and yields completed messages as
/// [`Out::Deliver`] from [`WireStack::drain`] (they may complete later
/// than the datagram that carried the final fragment).
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// A raw datagram (no reliability).
    Raw {
        /// Sender endpoint.
        from: Endpoint,
        /// Payload.
        msg: Bytes,
    },
    /// A multicast relay packet for the host's router logic.
    Mcast {
        /// Sender endpoint.
        from: Endpoint,
        /// MCAST body (decode with [`crate::mcast::McastMsg::decode`]).
        body: Bytes,
    },
    /// An RSTREAM body for a co-hosted [`Rstream`] not owned by this
    /// stack.
    Stream {
        /// Sender endpoint.
        from: Endpoint,
        /// RSTREAM body.
        body: Bytes,
    },
}

/// Derive the conventional node key of a non-migrating infrastructure
/// service (daemon, RC server, file server) from its well-known
/// endpoint. Application processes instead use the globally unique
/// process key their daemon assigned, which survives migration.
pub fn endpoint_key(ep: Endpoint) -> NodeKey {
    ((ep.host.0 as u64) << 32) | (1 << 63) | ep.port as u64
}

/// Consecutive duplicate-DATA streak that counts as receiver-side
/// evidence of a dead return path (our SACKs are not getting back).
const DUP_STREAK_ROTATE: u32 = 3;

/// A duplicate streak only counts as return-route evidence once fresh
/// DATA has been absent this long. While fresh fragments still arrive,
/// duplicates are just the sender's escalated retransmissions catching
/// up — rotating on them would flap a receiver off a working route.
const DUP_FRESH_STALL: SimDuration = SimDuration::from_millis(10);

/// Upper bound on distinct media used to spray erasure-coded shares
/// toward one peer. Spreading wider than this buys little redundancy
/// and keeps worst-case route fan-out predictable.
const MAX_SPRAY_PATHS: usize = 4;

/// The per-process wire stack.
pub struct WireStack {
    my_key: NodeKey,
    /// Registered protocol modules; index 0 is always SRUDP.
    drivers: Vec<Box<dyn Driver>>,
    paths: PathSelector,
    out: Vec<Out>,
    /// Reused scratch for failover scans (no steady-state allocation).
    key_scratch: Vec<NodeKey>,
    /// Per-stack observability counters (decode drops, rotations).
    metrics: Registry,
    /// Flat ids cached at construction so hot increments never hash.
    c_decode: [CounterId; FrameError::COUNT],
    c_body: CounterId,
    c_rotations: CounterId,
}

/// Build the stack's registry with its counters pre-registered; both
/// constructors ([`WireStack::new`] and [`WireStack::import_state`])
/// share it so ids always line up.
fn stack_registry() -> (Registry, [CounterId; FrameError::COUNT], CounterId, CounterId) {
    let mut m = Registry::new();
    // Indexed by `FrameError as usize`: keep this order in sync with
    // the enum's variant order.
    let c_decode = [
        m.counter("wire.decode.truncated"),
        m.counter("wire.decode.checksum"),
        m.counter("wire.decode.unknown_tag"),
    ];
    let c_body = m.counter("wire.decode.body");
    let c_rotations = m.counter("wire.path.rotations");
    (m, c_decode, c_body, c_rotations)
}

impl WireStack {
    /// New stack for a process with the given stable key.
    /// Compile-time proof that a whole stack can live inside a `Send`
    /// actor hosted on the sharded engine.
    const _ASSERT_SEND: () = {
        const fn assert_send<T: Send>() {}
        assert_send::<WireStack>()
    };

    pub fn new(my_key: NodeKey, cfg: StackConfig) -> WireStack {
        let mut drivers: Vec<Box<dyn Driver>> = Vec::with_capacity(3);
        drivers.push(Box::new(Srudp::new(my_key, cfg.srudp)));
        if let Some(rc) = cfg.rstream {
            drivers.push(Box::new(Rstream::new(rc, my_key)));
        }
        if cfg.mcast_member {
            drivers.push(Box::new(McastMember::new()));
        }
        let (metrics, c_decode, c_body, c_rotations) = stack_registry();
        WireStack {
            my_key,
            drivers,
            paths: PathSelector::new(),
            out: Vec::new(),
            key_scratch: Vec::new(),
            metrics,
            c_decode,
            c_body,
            c_rotations,
        }
    }

    /// Our node key.
    pub fn key(&self) -> NodeKey {
        self.my_key
    }

    fn srudp(&self) -> &Srudp {
        self.drivers[0].as_any().downcast_ref::<Srudp>().expect("driver 0 is SRUDP")
    }

    fn srudp_mut(&mut self) -> &mut Srudp {
        self.drivers[0].as_any_mut().downcast_mut::<Srudp>().expect("driver 0 is SRUDP")
    }

    fn driver_index(&self, proto: Proto) -> Option<usize> {
        self.drivers.iter().position(|d| d.proto() == proto)
    }

    /// The stack-owned RSTREAM driver, if one was registered.
    pub fn rstream(&self) -> Option<&Rstream> {
        self.driver_index(Proto::Rstream)
            .and_then(|i| self.drivers[i].as_any().downcast_ref::<Rstream>())
    }

    /// Mutable access to the stack-owned RSTREAM driver. Actions it
    /// emits (connect/send/close) are collected on the next
    /// [`WireStack::drain`].
    pub fn rstream_mut(&mut self) -> Option<&mut Rstream> {
        self.driver_index(Proto::Rstream)
            .and_then(|i| self.drivers[i].as_any_mut().downcast_mut::<Rstream>())
    }

    /// The stack-owned multicast member driver, if one was registered.
    pub fn mcast_member(&self) -> Option<&McastMember> {
        self.driver_index(Proto::Mcast)
            .and_then(|i| self.drivers[i].as_any().downcast_ref::<McastMember>())
    }

    /// Mutable access to the stack-owned multicast member driver
    /// (sequence allocation for sending).
    pub fn mcast_member_mut(&mut self) -> Option<&mut McastMember> {
        self.driver_index(Proto::Mcast)
            .and_then(|i| self.drivers[i].as_any_mut().downcast_mut::<McastMember>())
    }

    /// SRUDP counters.
    pub fn srudp_stats(&self) -> SrudpStats {
        self.srudp().stats()
    }

    /// Record a peer's location and (optionally) its ranked candidate
    /// networks from host metadata. Messages queued while the location
    /// was unknown start flowing immediately.
    pub fn set_peer(&mut self, key: NodeKey, ep: Endpoint, routes: Vec<NetId>) {
        self.set_peer_at(SimTime::ZERO, key, ep, routes)
    }

    /// [`Self::set_peer`] with an explicit current time (affects RTT
    /// bookkeeping of the fragments transmitted right away).
    pub fn set_peer_at(&mut self, now: SimTime, key: NodeKey, ep: Endpoint, routes: Vec<NetId>) {
        self.srudp_mut().set_peer_endpoint(key, ep);
        self.paths.update(key, routes);
        self.srudp_mut().pump_peer(now, key);
        self.harvest();
    }

    /// Current known location of a peer.
    pub fn peer_endpoint(&self, key: NodeKey) -> Option<Endpoint> {
        self.srudp().peer_endpoint(key)
    }

    /// Number of route failovers performed for a peer.
    pub fn failovers(&self, key: NodeKey) -> u32 {
        self.paths.failovers(key)
    }

    /// Read-only performance score for a peer: the path layer's best
    /// route score when candidates are pinned, else the transport's
    /// smoothed RTT in seconds. Lower is better; `None` means we have
    /// neither routes nor measurements (rank such peers last). This is
    /// the replica-selection hook — file clients sort candidate
    /// replicas by this score before opening a striped read.
    pub fn peer_score(&self, key: NodeKey) -> Option<f64> {
        self.paths.peer_score(key).or_else(|| self.srudp().peer_srtt(key).map(|s| s.as_secs_f64()))
    }

    /// All peer keys with transport state (learned or configured).
    pub fn known_peers(&self) -> Vec<NodeKey> {
        let mut v = Vec::new();
        self.known_peers_into(&mut v);
        v
    }

    /// [`Self::known_peers`] into a caller-owned scratch vector:
    /// appends (sorted) without allocating when capacity suffices.
    pub fn known_peers_into(&self, into: &mut Vec<NodeKey>) {
        self.srudp().peer_keys_into(into);
    }

    /// The pinned route candidates for a peer (empty = default routing).
    pub fn route_candidates(&self, key: NodeKey) -> Vec<NetId> {
        self.paths.peer(key).map(|p| p.candidates().collect()).unwrap_or_default()
    }

    /// Peers whose consecutive-timeout count reached `threshold` —
    /// candidates for RC location re-resolution (they may have
    /// migrated, §5.6).
    pub fn peers_in_trouble(&self, threshold: u32) -> Vec<NodeKey> {
        let mut v = Vec::new();
        self.peers_in_trouble_into(threshold, &mut v);
        v
    }

    /// [`Self::peers_in_trouble`] into a caller-owned scratch vector:
    /// appends (sorted) without allocating when capacity suffices.
    pub fn peers_in_trouble_into(&self, threshold: u32, into: &mut Vec<NodeKey>) {
        let srudp = self.srudp();
        let start = into.len();
        srudp.peer_keys_into(into);
        let mut w = start;
        for i in start..into.len() {
            let k = into[i];
            if srudp.peer_timeouts(k) >= threshold {
                into[w] = k;
                w += 1;
            }
        }
        into.truncate(w);
    }

    /// Send a reliable FIFO message to a peer by key. Errors when the
    /// configured fragment size is unusable (zero) — a misconfiguration
    /// surfaced to the caller rather than a panic deep in [`crate::frag`].
    pub fn send(&mut self, now: SimTime, to: NodeKey, msg: Bytes) -> SnipeResult<()> {
        self.srudp_mut().send_message(now, to, msg)?;
        self.harvest();
        Ok(())
    }

    /// Send a raw (unreliable) datagram to an endpoint.
    pub fn send_raw(&mut self, to: Endpoint, msg: Bytes) {
        self.out.push(Out::Send { to, via: None, spray: None, bytes: seal(Proto::Raw, msg) });
    }

    /// Send a multicast relay packet (already MCAST-encoded body).
    pub fn send_mcast(&mut self, to: Endpoint, body: Bytes) {
        self.out.push(Out::Send { to, via: None, spray: None, bytes: seal(Proto::Mcast, body) });
    }

    /// Handle an incoming datagram from the simulator.
    ///
    /// Traffic for a registered driver is consumed internally (drivers
    /// answer with their own control packets and deliver complete
    /// messages through [`Self::drain`]); anything else is surfaced to
    /// the caller.
    pub fn on_datagram(
        &mut self,
        now: SimTime,
        from: Endpoint,
        datagram: Bytes,
    ) -> SnipeResult<Option<Incoming>> {
        let (proto, body) = match open_classified(datagram) {
            Ok(opened) => opened,
            Err(e) => {
                self.metrics.inc(self.c_decode[e as usize]);
                return Err(SnipeError::Codec(format!("bad envelope: {}", e.name())));
            }
        };
        if let Some(i) = self.driver_index(proto) {
            if let Err(e) = self.drivers[i].on_datagram(now, from, body) {
                // A valid envelope carrying a malformed protocol body:
                // counted, surfaced, never panicked on.
                self.metrics.inc(self.c_body);
                return Err(e);
            }
            self.check_failover(now);
            self.harvest();
            return Ok(None);
        }
        Ok(match proto {
            Proto::Raw => Some(Incoming::Raw { from, msg: body }),
            Proto::Mcast => Some(Incoming::Mcast { from, body }),
            Proto::Rstream => Some(Incoming::Stream { from, body }),
            // SRUDP is always registered (driver index 0).
            Proto::Srudp => unreachable!("SRUDP driver is always registered"),
        })
    }

    /// Fire protocol timers (safe to call early or spuriously: drivers
    /// re-check their own deadlines).
    pub fn on_timer(&mut self, now: SimTime) {
        for d in &mut self.drivers {
            d.on_timer(now);
        }
        self.check_failover(now);
        self.harvest();
    }

    /// Recover after the hosting actor's machine rebooted
    /// (`Event::HostUp`): force-retransmit everything unacknowledged and
    /// fire every driver timer, then let the owner re-arm its gate from
    /// [`WireStack::next_deadline`]. Pending timers were swallowed while
    /// the host was down, so without this kick an idle-but-unacked stack
    /// wedges forever — a bug re-fixed per-actor three times before this
    /// helper existed. Call it from every actor embedding a stack.
    pub fn on_host_up(&mut self, now: SimTime) {
        self.srudp_mut().retransmit_all(now);
        self.on_timer(now);
    }

    /// Feed transport evidence into the path scorer and rotate routes
    /// for peers in trouble: sender-side evidence is consecutive RTO
    /// expiries; receiver-side evidence is a streak of duplicate DATA
    /// (our SACKs are not getting back, §6 failover). Forward progress
    /// (no outstanding timeouts) decays past penalties and folds the
    /// transport's RTT estimate into the current route's score.
    fn check_failover(&mut self, now: SimTime) {
        let mut keys = std::mem::take(&mut self.key_scratch);
        keys.clear();
        self.paths.keys_into(&mut keys);
        for &k in &keys {
            let timeouts = self.srudp().peer_timeouts(k);
            let srtt = self.srudp().peer_srtt(k);
            let dup = self.srudp().peer_dup_streak(k);
            let fresh_stalled = self
                .srudp()
                .peer_last_fresh(k)
                .map(|t| now.since(t) >= DUP_FRESH_STALL)
                .unwrap_or(true);
            let mut dup_rotated = false;
            let mut timeout_rotated = false;
            if let Some(p) = self.paths.peer_mut(k) {
                timeout_rotated = p.report_timeouts(timeouts);
                if timeouts == 0 {
                    if let Some(s) = srtt {
                        p.record_rtt(s);
                    }
                    p.record_progress();
                }
                if dup >= DUP_STREAK_ROTATE && fresh_stalled {
                    dup_rotated = p.rotate_for_dups(now);
                }
            }
            if dup_rotated {
                self.srudp_mut().reset_dup_streak(k);
            }
            if timeout_rotated || dup_rotated {
                self.metrics.inc(self.c_rotations);
                if trace::enabled() {
                    let net = self.paths.select(k).map(|n| n.0).unwrap_or(u32::MAX);
                    trace::record(now, TraceKind::PathRotate { peer: k, rank: net });
                }
            }
        }
        self.key_scratch = keys;
    }

    /// The stack's observability counters (decode drops by class, path
    /// rotations).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Total datagrams rejected by the decode path (any class),
    /// including valid envelopes with malformed protocol bodies.
    pub fn decode_drops(&self) -> u64 {
        self.metrics.counter_prefix_sum("wire.decode.")
    }

    /// Earliest wanted wake-up across every registered driver.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.drivers.iter().filter_map(|d| d.next_deadline()).min()
    }

    /// Unsent + unacked payload bytes across all peers.
    pub fn backlog_total(&self) -> usize {
        self.srudp().backlog_total()
    }

    /// True when nothing is queued or in flight in any driver.
    pub fn quiescent(&self) -> bool {
        self.out.is_empty() && self.drivers.iter().all(|d| d.quiescent())
    }

    /// Route an SRUDP datagram: find which peer owns this endpoint and
    /// ask the selector for its current medium (linear scan: peer
    /// counts are small per process).
    fn select_via(&self, to: Endpoint) -> Option<NetId> {
        let srudp = self.srudp();
        self.paths
            .keys()
            .find(|&k| srudp.peer_endpoint(k) == Some(to))
            .and_then(|k| self.paths.select(k))
    }

    /// Route an erasure-coded share: spread share `idx` across up to
    /// [`MAX_SPRAY_PATHS`] distinct media toward the peer at `to`, so
    /// a single gray link drops some shares rather than the whole
    /// message. Falls back to ordinary single-path selection when the
    /// peer is unknown or has one route.
    fn select_spray_via(&self, to: Endpoint, idx: u32) -> Option<NetId> {
        let srudp = self.srudp();
        let key = self.paths.keys().find(|&k| srudp.peer_endpoint(k) == Some(to));
        match key {
            Some(k) => {
                let routes = self.paths.select_k_distinct(k, MAX_SPRAY_PATHS);
                if routes.is_empty() {
                    self.paths.select(k)
                } else {
                    Some(routes[idx as usize % routes.len()])
                }
            }
            None => None,
        }
    }

    /// Move driver outputs into the stack queue, enveloping `Send`s
    /// under the emitting driver's protocol tag and pinning routes.
    fn harvest(&mut self) {
        for i in 0..self.drivers.len() {
            let proto = self.drivers[i].proto();
            for o in self.drivers[i].drain() {
                match o {
                    Out::Send { to, via, spray, bytes } => {
                        let via = if proto == Proto::Srudp {
                            match spray {
                                Some(idx) => self.select_spray_via(to, idx),
                                None => self.select_via(to),
                            }
                        } else {
                            via
                        };
                        self.out.push(Out::Send { to, via, spray, bytes: seal(proto, bytes) });
                    }
                    other => self.out.push(other),
                }
            }
        }
    }

    /// Drain pending actions (sends to execute + received messages).
    pub fn drain(&mut self) -> Vec<Out> {
        self.harvest();
        std::mem::take(&mut self.out)
    }

    /// Serialize the migratable transport state (§5.6): each driver's
    /// snapshot under its protocol tag. Path state is not carried: the
    /// new host has different interfaces, so routes are re-learned
    /// from RC metadata.
    pub fn export_state(&self) -> Bytes {
        let mut e = Encoder::new();
        e.put_u32(self.drivers.len() as u32);
        for d in &self.drivers {
            e.put_u8(d.proto().tag());
            e.put_bytes(&d.export_state());
        }
        e.finish()
    }

    /// Rebuild a stack from exported state: drivers are registered per
    /// `cfg`, handed their tagged snapshot section, and kick
    /// retransmission of everything unacknowledged. Sections for
    /// drivers the new configuration does not register are dropped.
    pub fn import_state(bytes: Bytes, cfg: StackConfig, now: SimTime) -> SnipeResult<WireStack> {
        let mut d = Decoder::new(bytes);
        let n = d.get_u32()?;
        let mut sections: Vec<(Proto, Bytes)> = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let proto = Proto::from_tag(d.get_u8()?)?;
            sections.push((proto, d.get_bytes()?));
        }
        let srudp_bytes = sections
            .iter()
            .find(|(p, _)| *p == Proto::Srudp)
            .map(|(_, b)| b.clone())
            .ok_or_else(|| SnipeError::Codec("stack snapshot missing SRUDP section".into()))?;
        let mut srudp = Srudp::import_state(srudp_bytes, cfg.srudp, now)?;
        srudp.retransmit_all(now);
        let my_key = srudp.key();
        let mut drivers: Vec<Box<dyn Driver>> = Vec::with_capacity(3);
        drivers.push(Box::new(srudp));
        if let Some(rc) = cfg.rstream {
            drivers.push(Box::new(Rstream::new(rc, my_key)));
        }
        if cfg.mcast_member {
            drivers.push(Box::new(McastMember::new()));
        }
        let (metrics, c_decode, c_body, c_rotations) = stack_registry();
        let mut stack = WireStack {
            my_key,
            drivers,
            paths: PathSelector::new(),
            out: Vec::new(),
            key_scratch: Vec::new(),
            metrics,
            c_decode,
            c_body,
            c_rotations,
        };
        for (proto, payload) in sections {
            if proto == Proto::Srudp {
                continue;
            }
            if let Some(i) = stack.driver_index(proto) {
                stack.drivers[i].import_state(payload, now)?;
            }
        }
        Ok(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::open;
    use snipe_util::id::HostId;
    use snipe_util::time::SimDuration;

    fn ep(h: u32, p: u16) -> Endpoint {
        Endpoint::new(HostId(h), p)
    }

    fn pump(
        a: &mut WireStack,
        b: &mut WireStack,
        a_ep: Endpoint,
        b_ep: Endpoint,
        steps: usize,
    ) -> (Vec<Bytes>, Vec<Bytes>) {
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            let mut moved = false;
            for o in a.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        moved = true;
                        b.on_datagram(now, a_ep, bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got_a.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            for o in b.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        moved = true;
                        a.on_datagram(now, b_ep, bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got_b.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            if !moved {
                now = now + SimDuration::from_millis(50);
                a.on_timer(now);
                b.on_timer(now);
            }
            now = now + SimDuration::from_micros(10);
        }
        (got_a, got_b)
    }

    #[test]
    fn reliable_message_end_to_end() {
        let mut a = WireStack::new(1, StackConfig::default());
        let mut b = WireStack::new(2, StackConfig::default());
        a.set_peer(2, ep(1, 5), vec![]);
        a.send(SimTime::ZERO, 2, Bytes::from_static(b"over the stack")).unwrap();
        let (_, got_b) = pump(&mut a, &mut b, ep(0, 5), ep(1, 5), 50);
        assert_eq!(got_b.len(), 1);
        assert_eq!(&got_b[0][..], b"over the stack");
        assert!(a.quiescent());
    }

    #[test]
    fn raw_datagram_surfaces() {
        let mut a = WireStack::new(1, StackConfig::default());
        let mut b = WireStack::new(2, StackConfig::default());
        a.send_raw(ep(1, 5), Bytes::from_static(b"raw"));
        let outs = a.drain();
        let Out::Send { bytes, .. } = &outs[0] else { panic!() };
        let inc = b.on_datagram(SimTime::ZERO, ep(0, 5), bytes.clone()).unwrap().unwrap();
        assert_eq!(inc, Incoming::Raw { from: ep(0, 5), msg: Bytes::from_static(b"raw") });
    }

    #[test]
    fn pinned_route_applied_to_srudp_sends() {
        let mut a = WireStack::new(1, StackConfig::default());
        a.set_peer(2, ep(1, 5), vec![NetId(3), NetId(4)]);
        a.send(SimTime::ZERO, 2, Bytes::from_static(b"pin me")).unwrap();
        let outs = a.drain();
        assert!(!outs.is_empty());
        for o in outs {
            if let Out::Send { via, .. } = o {
                assert_eq!(via, Some(NetId(3)));
            }
        }
    }

    #[test]
    fn failover_rotates_route_after_timeouts() {
        let mut cfg = StackConfig::default();
        cfg.srudp.rto_initial = SimDuration::from_millis(1);
        cfg.srudp.rto_min = SimDuration::from_millis(1);
        cfg.srudp.rto_max = SimDuration::from_millis(1);
        let mut a = WireStack::new(1, cfg);
        a.set_peer(2, ep(1, 5), vec![NetId(3), NetId(4)]);
        a.send(SimTime::ZERO, 2, Bytes::from_static(b"blackhole")).unwrap();
        a.drain();
        let mut now = SimTime::ZERO;
        for _ in 0..2 {
            now = now + SimDuration::from_millis(2);
            a.on_timer(now);
            a.drain();
        }
        assert_eq!(a.failovers(2), 1, "route must rotate after repeated timeouts");
        // The fresh route gets the same threshold of grace before it
        // is abandoned in turn: one more timeout must NOT rotate…
        now = now + SimDuration::from_millis(2);
        a.on_timer(now);
        a.drain();
        assert_eq!(a.failovers(2), 1, "grace period: no rotation on a single new timeout");
        // Subsequent sends use the alternate network.
        a.send(now, 2, Bytes::from_static(b"retry")).unwrap();
        let outs = a.drain();
        let vias: Vec<Option<NetId>> = outs
            .iter()
            .filter_map(|o| match o {
                Out::Send { via, .. } => Some(*via),
                _ => None,
            })
            .collect();
        assert!(vias.contains(&Some(NetId(4))), "vias: {vias:?}");
        // …but a full further threshold of timeouts rotates again.
        now = now + SimDuration::from_millis(2);
        a.on_timer(now);
        a.drain();
        assert_eq!(a.failovers(2), 2, "continued timeouts keep probing other routes");
    }

    #[test]
    fn peer_score_reflects_measured_rtt() {
        let mut a = WireStack::new(1, StackConfig::default());
        let mut b = WireStack::new(2, StackConfig::default());
        assert_eq!(a.peer_score(2), None, "no routes, no measurements");
        a.set_peer(2, ep(1, 5), vec![]);
        a.send(SimTime::ZERO, 2, Bytes::from_static(b"ping")).unwrap();
        pump(&mut a, &mut b, ep(0, 5), ep(1, 5), 50);
        let s = a.peer_score(2).expect("srtt measured after a round trip");
        assert!((0.0..10.0).contains(&s), "score {s} out of range");
        // Pinned routes report the path layer's score instead.
        let mut c = WireStack::new(3, StackConfig::default());
        c.set_peer(4, ep(2, 5), vec![NetId(1)]);
        let sc = c.peer_score(4).expect("pinned route has a prior score");
        assert!((sc - crate::path::UNMEASURED_RTT_SCORE).abs() < 1e-9);
    }

    #[test]
    fn mcast_and_stream_surface() {
        let mut b = WireStack::new(2, StackConfig::default());
        let dg = seal(Proto::Mcast, Bytes::from_static(b"mc"));
        let inc = b.on_datagram(SimTime::ZERO, ep(0, 5), dg).unwrap().unwrap();
        assert!(matches!(inc, Incoming::Mcast { .. }));
        let dg = seal(Proto::Rstream, Bytes::from_static(b"st"));
        let inc = b.on_datagram(SimTime::ZERO, ep(0, 5), dg).unwrap().unwrap();
        assert!(matches!(inc, Incoming::Stream { .. }));
    }

    #[test]
    fn corrupt_datagram_is_an_error() {
        let mut b = WireStack::new(2, StackConfig::default());
        assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), Bytes::from_static(&[0])).is_err());
    }

    #[test]
    fn migration_mid_stream_loses_nothing() {
        // Peer 2 "migrates" between endpoints while 1 streams to it:
        // messages queued toward the old endpoint are retransmitted to
        // the new one once the location updates (paper §5.6 guarantee).
        let mut cfg = StackConfig::default();
        cfg.srudp.rto_initial = SimDuration::from_millis(5);
        let mut a = WireStack::new(1, cfg.clone());
        let mut b = WireStack::new(2, cfg);
        a.set_peer(2, ep(1, 5), vec![]);
        for i in 0..5u8 {
            a.send(SimTime::ZERO, 2, Bytes::from(vec![i; 2000])).unwrap();
        }
        // Packets to the old endpoint are dropped (host gone).
        a.drain();
        // Migration completes: new location known.
        a.set_peer(2, ep(9, 5), vec![]);
        let mut got_b = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            let mut moved = false;
            for o in a.drain() {
                match o {
                    Out::Send { to, bytes, .. } => {
                        moved = true;
                        assert_eq!(to, ep(9, 5));
                        b.on_datagram(now, ep(0, 5), bytes).unwrap();
                    }
                    _ => {}
                }
            }
            for o in b.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        moved = true;
                        a.on_datagram(now, ep(9, 5), bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got_b.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            if !moved {
                now = now + SimDuration::from_millis(10);
                a.on_timer(now);
            }
            now = now + SimDuration::from_micros(10);
        }
        assert_eq!(got_b.len(), 5, "all pre-migration messages must arrive");
        for (i, m) in got_b.iter().enumerate() {
            assert_eq!(m[0] as usize, i, "FIFO order preserved across migration");
        }
    }

    #[test]
    fn rstream_driver_runs_over_the_stack() {
        let mut cfg = StackConfig::default();
        cfg.rstream = Some(RstreamConfig::default());
        let mut a = WireStack::new(1, cfg.clone());
        let mut b = WireStack::new(2, cfg);
        let a_ep = ep(0, 5);
        let b_ep = ep(1, 5);
        let id = a.rstream_mut().unwrap().connect(SimTime::ZERO, b_ep);
        a.rstream_mut().unwrap().send_message(SimTime::ZERO, id, b"streamed bytes").unwrap();
        let (_, got_b) = pump(&mut a, &mut b, a_ep, b_ep, 80);
        assert_eq!(got_b.len(), 1);
        assert_eq!(&got_b[0][..], b"streamed bytes");
        assert!(a.rstream().unwrap().is_established(id));
    }

    #[test]
    fn rstream_sends_carry_the_rstream_envelope() {
        let mut cfg = StackConfig::default();
        cfg.rstream = Some(RstreamConfig::default());
        let mut a = WireStack::new(1, cfg);
        a.rstream_mut().unwrap().connect(SimTime::ZERO, ep(1, 5));
        let outs = a.drain();
        assert!(!outs.is_empty());
        for o in outs {
            let Out::Send { bytes, .. } = o else { continue };
            let (proto, _) = open(bytes).unwrap();
            assert_eq!(proto, Proto::Rstream);
        }
    }

    #[test]
    fn mcast_member_driver_consumes_and_delivers() {
        use crate::mcast::McastMsg;
        let mut cfg = StackConfig::default();
        cfg.mcast_member = true;
        let mut b = WireStack::new(2, cfg);
        let body = McastMsg::Data {
            group: 7,
            origin: 42,
            seq: 0,
            ttl: 2,
            payload: Bytes::from_static(b"group msg"),
        }
        .encode();
        let dg = seal(Proto::Mcast, body.clone());
        // Consumed by the member driver, not surfaced.
        assert_eq!(b.on_datagram(SimTime::ZERO, ep(0, 5), dg.clone()).unwrap(), None);
        // Duplicate via a second router leg: dedup'd.
        assert_eq!(b.on_datagram(SimTime::ZERO, ep(3, 5), dg).unwrap(), None);
        let delivers: Vec<Out> =
            b.drain().into_iter().filter(|o| matches!(o, Out::Deliver { .. })).collect();
        assert_eq!(delivers.len(), 1);
        let Out::Deliver { proto, from_key, msg, .. } = &delivers[0] else { unreachable!() };
        assert_eq!(*proto, Proto::Mcast);
        assert_eq!(*from_key, 42);
        let decoded = McastMsg::decode(msg.clone()).unwrap();
        assert!(matches!(decoded, McastMsg::Data { group: 7, .. }));
    }

    #[test]
    fn tagged_snapshot_round_trips_every_driver() {
        let mut cfg = StackConfig::default();
        cfg.rstream = Some(RstreamConfig::default());
        cfg.mcast_member = true;
        let mut a = WireStack::new(1, cfg.clone());
        a.set_peer(2, ep(1, 5), vec![]);
        a.send(SimTime::ZERO, 2, Bytes::from_static(b"unacked")).unwrap();
        a.drain();
        a.mcast_member_mut().unwrap().accept(7, 9, 0, Bytes::new());

        let snap = a.export_state();
        let mut r = WireStack::import_state(snap, cfg, SimTime::ZERO).unwrap();
        assert_eq!(r.key(), 1);
        // SRUDP state survived and retransmits are queued.
        assert!(r.backlog_total() > 0);
        let sends = r.drain().into_iter().filter(|o| matches!(o, Out::Send { .. })).count();
        assert!(sends > 0, "import must kick retransmission");
        // Mcast dedup state survived.
        assert!(r.mcast_member_mut().unwrap().accept(7, 9, 0, Bytes::new()).is_none());
        assert!(r.mcast_member_mut().unwrap().accept(7, 9, 1, Bytes::new()).is_some());
        // RSTREAM deliberately restores nothing (connections die with
        // the process) but the driver is registered and usable.
        assert!(r.rstream().is_some());
    }
}
