//! The assembled wire stack embedded in every SNIPE process actor.
//!
//! [`WireStack`] glues together:
//!
//! * [`crate::srudp`] for reliable FIFO messaging keyed by stable node
//!   keys (so messages survive migration, §5.6),
//! * [`crate::route`] for multi-path pinning with automatic failover
//!   (§6),
//! * the [`crate::frame`] envelope so one simulator port carries every
//!   protocol,
//! * raw (unreliable) datagrams for protocols that bring their own
//!   redundancy (multicast relay legs).
//!
//! The stack is still sans-IO; a `snipe-netsim` actor drives it:
//! packets in via [`WireStack::on_datagram`], timer events via
//! [`WireStack::on_timer`], and emitted [`Out`] actions are translated
//! into `ctx.send`/`ctx.set_timer` calls by the embedding actor.

use bytes::Bytes;
use std::collections::HashMap;

use snipe_netsim::topology::Endpoint;
use snipe_util::error::SnipeResult;
use snipe_util::id::NetId;
use snipe_util::time::SimTime;

use crate::frame::{open, seal, Proto};
use crate::route::RouteManager;
use crate::srudp::{NodeKey, Srudp, SrudpConfig, SrudpStats};
use crate::Out;

/// Configuration for the assembled stack.
#[derive(Clone, Debug, Default)]
pub struct StackConfig {
    /// SRUDP tuning.
    pub srudp: SrudpConfig,
}

/// An incoming item after protocol demultiplexing.
///
/// Reliable SRUDP messages are *not* surfaced here: the stack consumes
/// them internally and yields them as [`Out::Deliver`] from
/// [`WireStack::drain`] (they may complete later than the datagram that
/// carried the final fragment).
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// A raw datagram (no reliability).
    Raw {
        /// Sender endpoint.
        from: Endpoint,
        /// Payload.
        msg: Bytes,
    },
    /// A multicast relay packet for the host's router logic.
    Mcast {
        /// Sender endpoint.
        from: Endpoint,
        /// MCAST body (decode with [`crate::mcast::McastMsg::decode`]).
        body: Bytes,
    },
    /// An RSTREAM body for a co-hosted [`crate::rstream::Rstream`].
    Stream {
        /// Sender endpoint.
        from: Endpoint,
        /// RSTREAM body.
        body: Bytes,
    },
}

/// Derive the conventional node key of a non-migrating infrastructure
/// service (daemon, RC server, file server) from its well-known
/// endpoint. Application processes instead use the globally unique
/// process key their daemon assigned, which survives migration.
pub fn endpoint_key(ep: Endpoint) -> NodeKey {
    ((ep.host.0 as u64) << 32) | (1 << 63) | ep.port as u64
}

/// The per-process wire stack.
pub struct WireStack {
    srudp: Srudp,
    routes: HashMap<NodeKey, RouteManager>,
    out: Vec<Out>,
}

impl WireStack {
    /// New stack for a process with the given stable key.
    pub fn new(my_key: NodeKey, cfg: StackConfig) -> WireStack {
        WireStack { srudp: Srudp::new(my_key, cfg.srudp), routes: HashMap::new(), out: Vec::new() }
    }

    /// Our node key.
    pub fn key(&self) -> NodeKey {
        self.srudp.key()
    }

    /// SRUDP counters.
    pub fn srudp_stats(&self) -> SrudpStats {
        self.srudp.stats()
    }

    /// Record a peer's location and (optionally) its ranked candidate
    /// networks from host metadata. Messages queued while the location
    /// was unknown start flowing immediately.
    pub fn set_peer(&mut self, key: NodeKey, ep: Endpoint, routes: Vec<NetId>) {
        self.set_peer_at(SimTime::ZERO, key, ep, routes)
    }

    /// [`Self::set_peer`] with an explicit current time (affects RTT
    /// bookkeeping of the fragments transmitted right away).
    pub fn set_peer_at(&mut self, now: SimTime, key: NodeKey, ep: Endpoint, routes: Vec<NetId>) {
        self.srudp.set_peer_endpoint(key, ep);
        match self.routes.get_mut(&key) {
            Some(r) => r.update(routes),
            None => {
                self.routes.insert(
                    key,
                    if routes.is_empty() { RouteManager::unpinned() } else { RouteManager::new(routes) },
                );
            }
        }
        self.srudp.pump_peer(now, key);
        self.harvest();
    }

    /// Current known location of a peer.
    pub fn peer_endpoint(&self, key: NodeKey) -> Option<Endpoint> {
        self.srudp.peer_endpoint(key)
    }

    /// Number of route failovers performed for a peer.
    pub fn failovers(&self, key: NodeKey) -> u32 {
        self.routes.get(&key).map_or(0, |r| r.failovers)
    }

    /// All peer keys with transport state (learned or configured).
    pub fn known_peers(&self) -> Vec<NodeKey> {
        self.srudp.peer_keys()
    }

    /// The pinned route candidates for a peer (empty = default routing).
    pub fn route_candidates(&self, key: NodeKey) -> Vec<snipe_util::id::NetId> {
        self.routes.get(&key).map(|r| r.candidates().to_vec()).unwrap_or_default()
    }

    /// Peers whose consecutive-timeout count reached `threshold` —
    /// candidates for RC location re-resolution (they may have
    /// migrated, §5.6).
    pub fn peers_in_trouble(&self, threshold: u32) -> Vec<NodeKey> {
        self.srudp
            .peer_keys()
            .into_iter()
            .filter(|&k| self.srudp.peer_timeouts(k) >= threshold)
            .collect()
    }

    /// Send a reliable FIFO message to a peer by key.
    pub fn send(&mut self, now: SimTime, to: NodeKey, msg: Bytes) {
        self.srudp.send_message(now, to, msg);
        self.harvest();
    }

    /// Send a raw (unreliable) datagram to an endpoint.
    pub fn send_raw(&mut self, to: Endpoint, msg: Bytes) {
        self.out.push(Out::Send { to, via: None, bytes: seal(Proto::Raw, msg) });
    }

    /// Send a multicast relay packet (already MCAST-encoded body).
    pub fn send_mcast(&mut self, to: Endpoint, body: Bytes) {
        self.out.push(Out::Send { to, via: None, bytes: seal(Proto::Mcast, body) });
    }

    /// Handle an incoming datagram from the simulator.
    ///
    /// SRUDP traffic is consumed internally (the stack answers with
    /// SACKs and delivers complete messages through [`Self::drain`]);
    /// other protocols are surfaced to the caller.
    pub fn on_datagram(
        &mut self,
        now: SimTime,
        from: Endpoint,
        datagram: Bytes,
    ) -> SnipeResult<Option<Incoming>> {
        let (proto, body) = open(datagram)?;
        match proto {
            Proto::Srudp => {
                self.srudp.on_packet(now, from, body)?;
                self.check_failover();
                self.harvest();
                Ok(None)
            }
            Proto::Raw => Ok(Some(Incoming::Raw { from, msg: body })),
            Proto::Mcast => Ok(Some(Incoming::Mcast { from, body })),
            Proto::Rstream => Ok(Some(Incoming::Stream { from, body })),
        }
    }

    /// Fire retransmission timers.
    pub fn on_timer(&mut self, now: SimTime) {
        self.srudp.on_timer(now);
        self.check_failover();
        self.harvest();
    }

    /// Rotate routes for peers in trouble: sender-side evidence is
    /// consecutive RTO expiries; receiver-side evidence is a streak of
    /// duplicate DATA (our SACKs are not getting back, §6 failover).
    fn check_failover(&mut self) {
        let keys: Vec<NodeKey> = self.routes.keys().copied().collect();
        for k in keys {
            let t = self.srudp.peer_timeouts(k);
            let rotated = match self.routes.get_mut(&k) {
                Some(r) => r.report_timeouts(t),
                None => false,
            };
            let dup = self.srudp.peer_dup_streak(k);
            if dup >= 3 {
                if let Some(r) = self.routes.get_mut(&k) {
                    r.rotate();
                }
                self.srudp.reset_dup_streak(k);
            }
            let _ = rotated;
        }
    }

    /// Earliest wanted wake-up.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.srudp.next_deadline()
    }

    /// Unsent + unacked payload bytes across all peers.
    pub fn backlog_total(&self) -> usize {
        self.srudp.backlog_total()
    }

    /// True when nothing is queued or in flight.
    pub fn quiescent(&self) -> bool {
        self.srudp.quiescent() && self.out.is_empty()
    }

    /// Move SRUDP outputs into the stack queue, enveloping and pinning
    /// routes.
    fn harvest(&mut self) {
        for o in self.srudp.drain() {
            match o {
                Out::Send { to, bytes, .. } => {
                    // Find which peer this endpoint belongs to, to apply
                    // its pinned route (linear scan: peer counts are
                    // small per process).
                    let via = self
                        .routes
                        .iter()
                        .find(|(k, _)| self.srudp.peer_endpoint(**k) == Some(to))
                        .and_then(|(_, r)| r.current());
                    self.out.push(Out::Send { to, via, bytes: seal(Proto::Srudp, bytes) });
                }
                Out::Deliver { from_key, from_ep, msg } => {
                    self.out.push(Out::Deliver { from_key, from_ep, msg });
                }
                Out::Wake { at } => self.out.push(Out::Wake { at }),
            }
        }
    }

    /// Drain pending actions (sends to execute + received messages).
    pub fn drain(&mut self) -> Vec<Out> {
        self.harvest();
        std::mem::take(&mut self.out)
    }

    /// Serialize the reliable-transport state for migration (§5.6).
    /// Route managers are not carried: the new host has different
    /// interfaces, so routes are re-learned from RC metadata.
    pub fn export_state(&self) -> Bytes {
        self.srudp.export_state()
    }

    /// Rebuild a stack from exported state and kick retransmission of
    /// everything unacknowledged.
    pub fn import_state(bytes: Bytes, cfg: StackConfig, now: SimTime) -> SnipeResult<WireStack> {
        let mut srudp = Srudp::import_state(bytes, cfg.srudp)?;
        srudp.retransmit_all(now);
        Ok(WireStack { srudp, routes: HashMap::new(), out: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_util::id::HostId;
    use snipe_util::time::SimDuration;

    fn ep(h: u32, p: u16) -> Endpoint {
        Endpoint::new(HostId(h), p)
    }

    fn pump(a: &mut WireStack, b: &mut WireStack, a_ep: Endpoint, b_ep: Endpoint, steps: usize) -> (Vec<Bytes>, Vec<Bytes>) {
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            let mut moved = false;
            for o in a.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        moved = true;
                        b.on_datagram(now, a_ep, bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got_a.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            for o in b.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        moved = true;
                        a.on_datagram(now, b_ep, bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got_b.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            if !moved {
                now = now + SimDuration::from_millis(50);
                a.on_timer(now);
                b.on_timer(now);
            }
            now = now + SimDuration::from_micros(10);
        }
        (got_a, got_b)
    }

    #[test]
    fn reliable_message_end_to_end() {
        let mut a = WireStack::new(1, StackConfig::default());
        let mut b = WireStack::new(2, StackConfig::default());
        a.set_peer(2, ep(1, 5), vec![]);
        a.send(SimTime::ZERO, 2, Bytes::from_static(b"over the stack"));
        let (_, got_b) = pump(&mut a, &mut b, ep(0, 5), ep(1, 5), 50);
        assert_eq!(got_b.len(), 1);
        assert_eq!(&got_b[0][..], b"over the stack");
        assert!(a.quiescent());
    }

    #[test]
    fn raw_datagram_surfaces() {
        let mut a = WireStack::new(1, StackConfig::default());
        let mut b = WireStack::new(2, StackConfig::default());
        a.send_raw(ep(1, 5), Bytes::from_static(b"raw"));
        let outs = a.drain();
        let Out::Send { bytes, .. } = &outs[0] else { panic!() };
        let inc = b.on_datagram(SimTime::ZERO, ep(0, 5), bytes.clone()).unwrap().unwrap();
        assert_eq!(inc, Incoming::Raw { from: ep(0, 5), msg: Bytes::from_static(b"raw") });
    }

    #[test]
    fn pinned_route_applied_to_srudp_sends() {
        let mut a = WireStack::new(1, StackConfig::default());
        a.set_peer(2, ep(1, 5), vec![NetId(3), NetId(4)]);
        a.send(SimTime::ZERO, 2, Bytes::from_static(b"pin me"));
        let outs = a.drain();
        assert!(!outs.is_empty());
        for o in outs {
            if let Out::Send { via, .. } = o {
                assert_eq!(via, Some(NetId(3)));
            }
        }
    }

    #[test]
    fn failover_rotates_route_after_timeouts() {
        let mut cfg = StackConfig::default();
        cfg.srudp.rto_initial = SimDuration::from_millis(1);
        cfg.srudp.rto_min = SimDuration::from_millis(1);
        cfg.srudp.rto_max = SimDuration::from_millis(1);
        let mut a = WireStack::new(1, cfg);
        a.set_peer(2, ep(1, 5), vec![NetId(3), NetId(4)]);
        a.send(SimTime::ZERO, 2, Bytes::from_static(b"blackhole"));
        a.drain();
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            now = now + SimDuration::from_millis(2);
            a.on_timer(now);
            a.drain();
        }
        assert!(a.failovers(2) >= 1, "route must rotate after repeated timeouts");
        // Subsequent sends use the alternate network.
        a.send(now, 2, Bytes::from_static(b"retry"));
        let outs = a.drain();
        let vias: Vec<Option<NetId>> = outs
            .iter()
            .filter_map(|o| match o {
                Out::Send { via, .. } => Some(*via),
                _ => None,
            })
            .collect();
        assert!(vias.contains(&Some(NetId(4))), "vias: {vias:?}");
    }

    #[test]
    fn mcast_and_stream_surface() {
        let mut b = WireStack::new(2, StackConfig::default());
        let dg = seal(Proto::Mcast, Bytes::from_static(b"mc"));
        let inc = b.on_datagram(SimTime::ZERO, ep(0, 5), dg).unwrap().unwrap();
        assert!(matches!(inc, Incoming::Mcast { .. }));
        let dg = seal(Proto::Rstream, Bytes::from_static(b"st"));
        let inc = b.on_datagram(SimTime::ZERO, ep(0, 5), dg).unwrap().unwrap();
        assert!(matches!(inc, Incoming::Stream { .. }));
    }

    #[test]
    fn corrupt_datagram_is_an_error() {
        let mut b = WireStack::new(2, StackConfig::default());
        assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), Bytes::from_static(&[0])).is_err());
    }

    #[test]
    fn migration_mid_stream_loses_nothing() {
        // Peer 2 "migrates" between endpoints while 1 streams to it:
        // messages queued toward the old endpoint are retransmitted to
        // the new one once the location updates (paper §5.6 guarantee).
        let mut cfg = StackConfig::default();
        cfg.srudp.rto_initial = SimDuration::from_millis(5);
        let mut a = WireStack::new(1, cfg.clone());
        let mut b = WireStack::new(2, cfg);
        a.set_peer(2, ep(1, 5), vec![]);
        for i in 0..5u8 {
            a.send(SimTime::ZERO, 2, Bytes::from(vec![i; 2000]));
        }
        // Packets to the old endpoint are dropped (host gone).
        a.drain();
        // Migration completes: new location known.
        a.set_peer(2, ep(9, 5), vec![]);
        let mut got_b = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            let mut moved = false;
            for o in a.drain() {
                match o {
                    Out::Send { to, bytes, .. } => {
                        moved = true;
                        assert_eq!(to, ep(9, 5));
                        b.on_datagram(now, ep(0, 5), bytes).unwrap();
                    }
                    _ => {}
                }
            }
            for o in b.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        moved = true;
                        a.on_datagram(now, ep(9, 5), bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got_b.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            if !moved {
                now = now + SimDuration::from_millis(10);
                a.on_timer(now);
            }
            now = now + SimDuration::from_micros(10);
        }
        assert_eq!(got_b.len(), 5, "all pre-migration messages must arrive");
        for (i, m) in got_b.iter().enumerate() {
            assert_eq!(m[0] as usize, i, "FIFO order preserved across migration");
        }
    }
}
