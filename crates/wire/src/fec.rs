//! Erasure-coded fragmentation: systematic Reed-Solomon over GF(2^8).
//!
//! Plain fragmentation makes a message's delivery probability collapse
//! as `(1-p)^n` under per-packet loss `p`: every fragment must survive.
//! Share coding inverts the shape. A message is split into `b` data
//! chunks and extended to `2b-1` equal-length shares such that *any*
//! `b` of them reconstruct the original — the sender can lose any
//! `b-1` shares (about half) and the receiver still assembles the
//! message on the first flight, with no retransmission round-trips.
//! Combined with spraying shares across distinct routes
//! ([`crate::path::PathSelector::select_k_distinct`]), a gray link
//! costs shares, not messages.
//!
//! The code is a classic systematic Reed-Solomon construction: for each
//! byte position `t`, the `b` data bytes define the unique polynomial
//! `p_t` of degree `< b` with `p_t(j) = chunk_j[t]` for `j in 0..b`;
//! parity share `k` (for `k in b..2b-1`) carries `p_t(k)`. Decoding
//! from any `b` received shares is Lagrange interpolation back to the
//! data points. All arithmetic is over GF(2^8) with the primitive
//! polynomial `x^8+x^4+x^3+x^2+1` (0x11d) and generator 2, via
//! compile-time log/exp tables — no runtime initialisation, no
//! dependencies, same spirit as the in-repo checksum primitives.
//!
//! Reconstruction is integrity-checked end to end: the share header
//! (owned by the driver, see the SRUDP `KIND_FEC` layout) carries an
//! FNV-1a checksum over the *original message*, verified after
//! interpolation. A decode that passes share-length validation but
//! yields wrong bytes (corrupted or forged shares that slipped past
//! the envelope checksum) is detected there and never delivered.

use bytes::Bytes;
use snipe_util::error::{SnipeError, SnipeResult};

/// Largest supported data-share count. `2b-1` evaluation points must
/// be distinct field elements, and keeping `b` in a `u8` keeps the
/// share header small; 128 data shares of one MTU each already covers
/// messages far beyond SNIPE's RPC and file-chunk sizes.
pub const MAX_B: usize = 128;

/// How a driver fragments outgoing messages that exceed one MTU.
///
/// Selectable per-driver (each driver's config carries one), so
/// SRUDP / RSTREAM / mcast can opt in independently without any
/// change to `WireStack::send` callers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FragStrategy {
    /// Split into `n` fragments; all `n` must arrive (delivery decays
    /// as `(1-p)^n` per flight, recovered by retransmission).
    #[default]
    Plain,
    /// Encode into `2b-1` Reed-Solomon shares; any `b` reconstruct.
    /// Falls back to [`FragStrategy::Plain`] for messages that fit in
    /// one fragment (no benefit) or need more than [`MAX_B`] chunks.
    Fec,
}

impl FragStrategy {
    /// Stable lowercase name (config echo, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            FragStrategy::Plain => "plain",
            FragStrategy::Fec => "fec",
        }
    }
}

// ---------------------------------------------------------------------
// GF(2^8) arithmetic
// ---------------------------------------------------------------------

const GF_POLY: u32 = 0x11d;

/// `exp` is doubled (510 entries) so `mul` can index `log a + log b`
/// without a modular reduction.
const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u32 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= GF_POLY;
        }
        i += 1;
    }
    let mut j = 255;
    while j < 510 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
const GF_EXP: [u8; 512] = TABLES.0;
const GF_LOG: [u8; 256] = TABLES.1;

#[inline]
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        GF_EXP[GF_LOG[a as usize] as usize + GF_LOG[b as usize] as usize]
    }
}

/// `a / b`. `b` must be non-zero; every divisor in this module is a
/// product of XORs of *distinct* evaluation points, which cannot be 0.
#[inline]
fn gf_div(a: u8, b: u8) -> u8 {
    debug_assert_ne!(b, 0, "division by zero in GF(2^8)");
    if a == 0 {
        0
    } else {
        GF_EXP[GF_LOG[a as usize] as usize + 255 - GF_LOG[b as usize] as usize]
    }
}

/// Lagrange basis coefficient `l_i(at)` for the point set `xs`:
/// `prod_{m != i} (at - xs[m]) / (xs[i] - xs[m])` (subtraction is XOR).
fn lagrange_coeff(xs: &[u8], i: usize, at: u8) -> u8 {
    let mut num = 1u8;
    let mut den = 1u8;
    for (m, &xm) in xs.iter().enumerate() {
        if m == i {
            continue;
        }
        num = gf_mul(num, at ^ xm);
        den = gf_mul(den, xs[i] ^ xm);
    }
    gf_div(num, den)
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

/// FNV-1a over the whole message: the end-to-end integrity check
/// carried in every share header and verified after reconstruction.
pub fn msg_checksum(msg: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in msg {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

/// Share length for a message of `msg_len` bytes split into `b` chunks.
pub fn share_len(msg_len: usize, b: usize) -> usize {
    msg_len.div_ceil(b)
}

/// Encode `msg` into `2b-1` equal-length shares. Shares `0..b` are the
/// message bytes themselves (the last chunk zero-padded) — the
/// systematic property: under zero loss the receiver concatenates and
/// never touches field arithmetic. Shares `b..2b-1` are parity.
///
/// Errors if `b` is out of `1..=MAX_B` or the message is empty.
pub fn encode(msg: &[u8], b: usize) -> SnipeResult<Vec<Bytes>> {
    if b == 0 || b > MAX_B {
        return Err(SnipeError::Protocol(format!("fec encode: b {b} out of 1..={MAX_B}")));
    }
    if msg.is_empty() {
        return Err(SnipeError::Protocol("fec encode: empty message".to_string()));
    }
    let slen = share_len(msg.len(), b);
    let mut shares: Vec<Bytes> = Vec::with_capacity(2 * b - 1);
    let mut padded;
    let data: &[u8] = if msg.len() == b * slen {
        msg
    } else {
        padded = msg.to_vec();
        padded.resize(b * slen, 0);
        &padded
    };
    for j in 0..b {
        shares.push(Bytes::copy_from_slice(&data[j * slen..(j + 1) * slen]));
    }
    // Parity share k carries p_t(k); with the data points fixed at
    // x = 0..b the basis coefficients depend only on (k, j), so one
    // coefficient row serves the whole share.
    let xs: Vec<u8> = (0..b as u8).collect();
    for k in b..2 * b - 1 {
        let coeffs: Vec<u8> = (0..b).map(|j| lagrange_coeff(&xs, j, k as u8)).collect();
        let mut share = vec![0u8; slen];
        for (j, &c) in coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let chunk = &data[j * slen..(j + 1) * slen];
            for (t, s) in share.iter_mut().enumerate() {
                *s ^= gf_mul(c, chunk[t]);
            }
        }
        shares.push(Bytes::from(share));
    }
    Ok(shares)
}

/// Reconstruct a `msg_len`-byte message from any `b` distinct shares
/// of an [`encode`]`(msg, b)` family. `shares` pairs each share index
/// (`0..2b-1`) with its bytes; duplicates beyond the first `b`
/// distinct indices are ignored.
///
/// Every structural property is validated — index range, share count,
/// uniform share length consistent with `msg_len` — and violations are
/// `Protocol` errors, never panics: hostile shares are expected input.
/// Content corruption that passes these checks is caught by the
/// caller's [`msg_checksum`] comparison.
pub fn decode(b: usize, msg_len: usize, shares: &[(u32, Bytes)]) -> SnipeResult<Vec<u8>> {
    if b == 0 || b > MAX_B {
        return Err(SnipeError::Protocol(format!("fec decode: b {b} out of 1..={MAX_B}")));
    }
    if msg_len == 0 {
        return Err(SnipeError::Protocol("fec decode: empty message".to_string()));
    }
    let total = 2 * b - 1;
    let slen = share_len(msg_len, b);
    if msg_len > b * slen {
        return Err(SnipeError::Protocol(format!(
            "fec decode: msg_len {msg_len} inconsistent with b {b}"
        )));
    }
    // First `b` distinct in-range shares, in index order (deterministic
    // regardless of arrival order).
    let mut chosen: Vec<Option<&Bytes>> = vec![None; total];
    let mut have = 0usize;
    for (idx, bytes) in shares {
        let idx = *idx as usize;
        if idx >= total || chosen[idx].is_some() {
            continue;
        }
        if bytes.len() != slen {
            return Err(SnipeError::Protocol(format!(
                "fec decode: share {idx} is {} bytes, want {slen}",
                bytes.len()
            )));
        }
        chosen[idx] = Some(bytes);
        have += 1;
        if have == b {
            break;
        }
    }
    if have < b {
        return Err(SnipeError::Protocol(format!("fec decode: {have} distinct shares, need {b}")));
    }
    let mut out = vec![0u8; b * slen];
    // Systematic shares drop straight in; note which chunks are missing.
    let mut missing: Vec<usize> = Vec::new();
    for j in 0..b {
        match chosen[j] {
            Some(bytes) => out[j * slen..(j + 1) * slen].copy_from_slice(bytes),
            None => missing.push(j),
        }
    }
    if !missing.is_empty() {
        let points: Vec<(u8, &Bytes)> = chosen
            .iter()
            .enumerate()
            .filter_map(|(x, s)| s.map(|bytes| (x as u8, bytes)))
            .take(b)
            .collect();
        let xs: Vec<u8> = points.iter().map(|(x, _)| *x).collect();
        for &j in &missing {
            let coeffs: Vec<u8> = (0..b).map(|i| lagrange_coeff(&xs, i, j as u8)).collect();
            for (i, &c) in coeffs.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let src = points[i].1;
                let dst = &mut out[j * slen..(j + 1) * slen];
                for (t, d) in dst.iter_mut().enumerate() {
                    *d ^= gf_mul(c, src[t]);
                }
            }
        }
    }
    out.truncate(msg_len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn tables_are_a_permutation() {
        // Generator 2 must cycle through all 255 non-zero elements.
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = GF_EXP[i] as usize;
            assert!(v != 0 && !seen[v], "exp table not a permutation at {i}");
            seen[v] = true;
        }
        for a in 1..=255u8 {
            assert_eq!(GF_EXP[GF_LOG[a as usize] as usize], a);
        }
    }

    #[test]
    fn field_axioms_spot_check() {
        for a in [1u8, 7, 100, 255] {
            for b in [1u8, 3, 90, 254] {
                let p = gf_mul(a, b);
                assert_eq!(gf_div(p, b), a);
                assert_eq!(gf_mul(a, 1), a);
            }
        }
        assert_eq!(gf_mul(0, 123), 0);
        assert_eq!(gf_mul(123, 0), 0);
    }

    #[test]
    fn systematic_prefix_is_the_message() {
        let m = msg(1000);
        let b = 4;
        let shares = encode(&m, b).unwrap();
        assert_eq!(shares.len(), 2 * b - 1);
        let slen = share_len(m.len(), b);
        let concat: Vec<u8> = shares[..b].iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(&concat[..m.len()], &m[..]);
        assert!(shares.iter().all(|s| s.len() == slen));
    }

    #[test]
    fn any_b_shares_reconstruct() {
        let m = msg(997); // deliberately not a multiple of b
        let b = 5;
        let shares = encode(&m, b).unwrap();
        let indexed: Vec<(u32, Bytes)> =
            shares.iter().enumerate().map(|(i, s)| (i as u32, s.clone())).collect();
        // Every contiguous window and a few scattered subsets.
        for start in 0..b {
            let subset: Vec<_> =
                (0..b).map(|i| indexed[(start + i) % (2 * b - 1)].clone()).collect();
            assert_eq!(decode(b, m.len(), &subset).unwrap(), m, "window at {start}");
        }
        let parity_heavy: Vec<_> =
            [8usize, 7, 6, 5, 0].iter().map(|&i| indexed[i].clone()).collect();
        assert_eq!(decode(b, m.len(), &parity_heavy).unwrap(), m);
    }

    #[test]
    fn b_one_degenerates_to_the_message() {
        let m = msg(33);
        let shares = encode(&m, 1).unwrap();
        assert_eq!(shares.len(), 1);
        assert_eq!(&shares[0][..], &m[..]);
        assert_eq!(decode(1, m.len(), &[(0, shares[0].clone())]).unwrap(), m);
    }

    #[test]
    fn too_few_shares_is_an_error() {
        let m = msg(100);
        let shares = encode(&m, 3).unwrap();
        let two: Vec<(u32, Bytes)> = vec![(0, shares[0].clone()), (4, shares[4].clone())];
        assert_eq!(decode(3, m.len(), &two).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn duplicate_indices_do_not_count_twice() {
        let m = msg(64);
        let shares = encode(&m, 3).unwrap();
        let dup: Vec<(u32, Bytes)> =
            vec![(0, shares[0].clone()), (0, shares[0].clone()), (1, shares[1].clone())];
        assert_eq!(decode(3, m.len(), &dup).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn hostile_structure_is_rejected_not_panicked() {
        let m = msg(64);
        let shares = encode(&m, 3).unwrap();
        // Wrong share length.
        let bad_len: Vec<(u32, Bytes)> =
            vec![(0, Bytes::from_static(b"x")), (1, shares[1].clone()), (2, shares[2].clone())];
        assert!(decode(3, m.len(), &bad_len).is_err());
        // Out-of-range index never counts toward the quorum.
        let oob: Vec<(u32, Bytes)> =
            vec![(99, shares[0].clone()), (1, shares[1].clone()), (2, shares[2].clone())];
        assert!(decode(3, m.len(), &oob).is_err());
        // Inconsistent msg_len / b combinations.
        assert!(decode(0, 10, &[]).is_err());
        assert!(decode(MAX_B + 1, 10, &[]).is_err());
        assert!(decode(3, 0, &[]).is_err());
        assert!(encode(&m, 0).is_err());
        assert!(encode(&m, MAX_B + 1).is_err());
        assert!(encode(&[], 3).is_err());
    }

    #[test]
    fn corrupted_share_changes_output_and_checksum_catches_it() {
        let m = msg(500);
        let b = 4;
        let want = msg_checksum(&m);
        let shares = encode(&m, b).unwrap();
        // Corrupt a parity share, then force a reconstruction that uses it.
        let mut evil = shares[b].to_vec();
        evil[3] ^= 0x40;
        let subset: Vec<(u32, Bytes)> = vec![
            (b as u32, Bytes::from(evil)),
            (1, shares[1].clone()),
            (2, shares[2].clone()),
            (3, shares[3].clone()),
        ];
        let got = decode(b, m.len(), &subset).unwrap();
        assert_ne!(got, m);
        assert_ne!(msg_checksum(&got), want);
    }

    #[test]
    fn max_b_family_round_trips() {
        let m = msg(MAX_B * 3 + 11);
        let shares = encode(&m, MAX_B).unwrap();
        assert_eq!(shares.len(), 2 * MAX_B - 1);
        // Drop all systematic shares except one: worst-case interpolation.
        let subset: Vec<(u32, Bytes)> = std::iter::once((0u32, shares[0].clone()))
            .chain((MAX_B..2 * MAX_B - 1).map(|i| (i as u32, shares[i].clone())))
            .collect();
        assert_eq!(decode(MAX_B, m.len(), &subset).unwrap(), m);
    }
}
