//! Reliable group communication: the router-based multicast of §5.4.
//!
//! "Multicast messages are sent to one or more host daemons which are
//! acting as routers for that particular multicast group. Each router
//! is responsible for relaying messages to a subset of the processes in
//! the group, and to other routers which have not received the message.
//! ... each process ... may register its membership with multiple
//! multicast routers. Each router ... registers itself with more than
//! half of the other routers ... and any message sent to that group is
//! initially sent to more than half of the routers ... to ensure that
//! there is at least one path from the sending process to each
//! recipient."
//!
//! Reliability therefore comes from **redundant paths** (majority
//! fan-out plus router-to-router flooding with dedup), not per-leg
//! retransmission; this module implements the router relay state and
//! member-side dedup as sans-IO state machines.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{Decoder, Encoder};
use snipe_util::error::{SnipeError, SnipeResult};

use crate::Out;

/// A multicast group identifier (hash of the group URN; the URN itself
/// lives in RC metadata).
pub type GroupId = u64;

const KIND_DATA: u8 = 1;
const KIND_JOIN: u8 = 2;
const KIND_LEAVE: u8 = 3;
const KIND_PEER: u8 = 4;

/// A parsed multicast packet.
#[derive(Clone, Debug, PartialEq)]
pub enum McastMsg {
    /// Group payload in flight.
    Data {
        /// Group.
        group: GroupId,
        /// Stable key of the original sender.
        origin: u64,
        /// Origin's per-group sequence number (dedup key).
        seq: u64,
        /// Remaining router-to-router hops allowed.
        ttl: u8,
        /// Payload.
        payload: Bytes,
    },
    /// A member registers with this router.
    Join {
        /// Group.
        group: GroupId,
        /// Member's delivery endpoint.
        member: Endpoint,
    },
    /// A member leaves.
    Leave {
        /// Group.
        group: GroupId,
        /// Member endpoint to remove.
        member: Endpoint,
    },
    /// Another router announces itself as a peer for the group.
    Peer {
        /// Group.
        group: GroupId,
        /// The peer router's endpoint.
        router: Endpoint,
    },
}

impl McastMsg {
    /// Encode to wire bytes (the MCAST envelope body).
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        match self {
            McastMsg::Data { group, origin, seq, ttl, payload } => {
                e.put_u8(KIND_DATA);
                e.put_u64(*group);
                e.put_u64(*origin);
                e.put_u64(*seq);
                e.put_u8(*ttl);
                e.put_bytes(payload);
            }
            McastMsg::Join { group, member } => {
                e.put_u8(KIND_JOIN);
                e.put_u64(*group);
                e.put_u32(member.host.0);
                e.put_u16(member.port);
            }
            McastMsg::Leave { group, member } => {
                e.put_u8(KIND_LEAVE);
                e.put_u64(*group);
                e.put_u32(member.host.0);
                e.put_u16(member.port);
            }
            McastMsg::Peer { group, router } => {
                e.put_u8(KIND_PEER);
                e.put_u64(*group);
                e.put_u32(router.host.0);
                e.put_u16(router.port);
            }
        }
        e.finish()
    }

    /// Decode from wire bytes.
    pub fn decode(body: Bytes) -> SnipeResult<McastMsg> {
        let mut d = Decoder::new(body);
        let kind = d.get_u8()?;
        let group = d.get_u64()?;
        Ok(match kind {
            KIND_DATA => McastMsg::Data {
                group,
                origin: d.get_u64()?,
                seq: d.get_u64()?,
                ttl: d.get_u8()?,
                payload: d.get_bytes()?,
            },
            KIND_JOIN => McastMsg::Join {
                group,
                member: Endpoint::new(snipe_util::id::HostId(d.get_u32()?), d.get_u16()?),
            },
            KIND_LEAVE => McastMsg::Leave {
                group,
                member: Endpoint::new(snipe_util::id::HostId(d.get_u32()?), d.get_u16()?),
            },
            KIND_PEER => McastMsg::Peer {
                group,
                router: Endpoint::new(snipe_util::id::HostId(d.get_u32()?), d.get_u16()?),
            },
            k => return Err(SnipeError::Protocol(format!("unknown MCAST kind {k}"))),
        })
    }
}

/// Per-group relay state held by a router (a SNIPE daemon that elected
/// itself, §5.4).
#[derive(Debug, Default)]
struct GroupState {
    members: HashSet<Endpoint>,
    peers: HashSet<Endpoint>,
    seen: HashSet<(u64, u64)>,
}

/// The router relay: dedup + fan-out to members and peer routers.
#[derive(Debug, Default)]
pub struct McastRouter {
    groups: HashMap<GroupId, GroupState>,
    /// Messages relayed (for stats).
    pub relayed: u64,
    /// Duplicates suppressed.
    pub duplicates: u64,
}

impl McastRouter {
    /// Empty router.
    pub fn new() -> McastRouter {
        McastRouter::default()
    }

    /// Member endpoints of a group on this router.
    pub fn members(&self, g: GroupId) -> Vec<Endpoint> {
        let mut v: Vec<Endpoint> =
            self.groups.get(&g).map(|s| s.members.iter().copied().collect()).unwrap_or_default();
        v.sort();
        v
    }

    /// Peer routers of a group on this router.
    pub fn peers(&self, g: GroupId) -> Vec<Endpoint> {
        let mut v: Vec<Endpoint> =
            self.groups.get(&g).map(|s| s.peers.iter().copied().collect()).unwrap_or_default();
        v.sort();
        v
    }

    /// Handle one MCAST packet arriving at this router; emits relays
    /// into `out`.
    pub fn on_message(&mut self, msg: McastMsg, out: &mut Vec<Out>) {
        match msg {
            McastMsg::Join { group, member } => {
                self.groups.entry(group).or_default().members.insert(member);
            }
            McastMsg::Leave { group, member } => {
                if let Some(s) = self.groups.get_mut(&group) {
                    s.members.remove(&member);
                }
            }
            McastMsg::Peer { group, router } => {
                self.groups.entry(group).or_default().peers.insert(router);
            }
            McastMsg::Data { group, origin, seq, ttl, payload } => {
                let state = self.groups.entry(group).or_default();
                if !state.seen.insert((origin, seq)) {
                    self.duplicates += 1;
                    return;
                }
                self.relayed += 1;
                // Deliver to local members.
                let mut members: Vec<Endpoint> = state.members.iter().copied().collect();
                members.sort();
                for m in members {
                    let fwd = McastMsg::Data { group, origin, seq, ttl, payload: payload.clone() };
                    out.push(Out::Send {
                        to: m,
                        via: None,
                        spray: None,
                        bytes: crate::frame::seal(crate::frame::Proto::Mcast, fwd.encode()),
                    });
                }
                // Relay to peer routers while TTL remains.
                if ttl > 0 {
                    let mut peers: Vec<Endpoint> = state.peers.iter().copied().collect();
                    peers.sort();
                    for p in peers {
                        let fwd = McastMsg::Data {
                            group,
                            origin,
                            seq,
                            ttl: ttl - 1,
                            payload: payload.clone(),
                        };
                        out.push(Out::Send {
                            to: p,
                            via: None,
                            spray: None,
                            bytes: crate::frame::seal(crate::frame::Proto::Mcast, fwd.encode()),
                        });
                    }
                }
            }
        }
    }
}

/// Member-side dedup: a process registered with several routers receives
/// each message up to once per router and must deliver exactly once.
///
/// As a [`Driver`](crate::driver::Driver) the member consumes MCAST
/// datagrams and emits one [`Out::Deliver`] per fresh `(origin, seq)`;
/// the delivered `msg` is the *encoded* [`McastMsg`] body so consumers
/// can recover the group id and payload with [`McastMsg::decode`].
#[derive(Debug, Default)]
pub struct McastMember {
    seen: HashMap<GroupId, HashSet<(u64, u64)>>,
    next_seq: HashMap<GroupId, u64>,
    out: Vec<Out>,
}

impl McastMember {
    /// Empty member state.
    pub fn new() -> McastMember {
        McastMember::default()
    }

    /// Allocate the next per-group sequence number for sending.
    pub fn next_seq(&mut self, g: GroupId) -> u64 {
        let s = self.next_seq.entry(g).or_insert(0);
        let v = *s;
        *s += 1;
        v
    }

    /// Returns the payload exactly once per (origin, seq); `None` for
    /// duplicates.
    pub fn accept(
        &mut self,
        group: GroupId,
        origin: u64,
        seq: u64,
        payload: Bytes,
    ) -> Option<Bytes> {
        if self.seen.entry(group).or_default().insert((origin, seq)) {
            Some(payload)
        } else {
            None
        }
    }

    /// Handle one MCAST envelope body arriving at this member. Fresh
    /// `Data` becomes a `Deliver` carrying the encoded message (so the
    /// group id travels with it); duplicates and router-side control
    /// messages (Join/Leave/Peer) are silently dropped.
    pub fn on_datagram(&mut self, from: Endpoint, body: Bytes) -> SnipeResult<()> {
        let msg = McastMsg::decode(body.clone())?;
        if let McastMsg::Data { group, origin, seq, .. } = msg {
            if self.accept(group, origin, seq, Bytes::new()).is_some() {
                self.out.push(Out::Deliver {
                    proto: crate::frame::Proto::Mcast,
                    from_key: origin,
                    from_ep: from,
                    msg: body,
                });
            }
        }
        Ok(())
    }

    /// Serialize dedup + sequence state (sorted, so snapshots are
    /// byte-for-byte deterministic).
    pub fn export_state(&self) -> Bytes {
        let mut e = Encoder::new();
        let mut groups: Vec<GroupId> = self.seen.keys().copied().collect();
        groups.sort_unstable();
        e.put_u32(groups.len() as u32);
        for g in groups {
            let set = &self.seen[&g];
            let mut pairs: Vec<(u64, u64)> = set.iter().copied().collect();
            pairs.sort_unstable();
            e.put_u64(g);
            e.put_u32(pairs.len() as u32);
            for (origin, seq) in pairs {
                e.put_u64(origin);
                e.put_u64(seq);
            }
        }
        let mut seqs: Vec<(GroupId, u64)> = self.next_seq.iter().map(|(&g, &s)| (g, s)).collect();
        seqs.sort_unstable();
        e.put_u32(seqs.len() as u32);
        for (g, s) in seqs {
            e.put_u64(g);
            e.put_u64(s);
        }
        e.finish()
    }

    /// Restore state produced by [`McastMember::export_state`].
    pub fn import_state(bytes: Bytes) -> SnipeResult<McastMember> {
        let mut d = Decoder::new(bytes);
        let mut seen: HashMap<GroupId, HashSet<(u64, u64)>> = HashMap::new();
        let ngroups = d.get_u32()?;
        for _ in 0..ngroups {
            let g = d.get_u64()?;
            let n = d.get_u32()?;
            let set = seen.entry(g).or_default();
            for _ in 0..n {
                let origin = d.get_u64()?;
                let seq = d.get_u64()?;
                set.insert((origin, seq));
            }
        }
        let mut next_seq = HashMap::new();
        let nseqs = d.get_u32()?;
        for _ in 0..nseqs {
            let g = d.get_u64()?;
            let s = d.get_u64()?;
            next_seq.insert(g, s);
        }
        Ok(McastMember { seen, next_seq, out: Vec::new() })
    }
}

impl crate::driver::Driver for McastMember {
    fn proto(&self) -> crate::frame::Proto {
        crate::frame::Proto::Mcast
    }

    fn on_datagram(
        &mut self,
        _now: snipe_util::time::SimTime,
        from: Endpoint,
        body: Bytes,
    ) -> SnipeResult<()> {
        McastMember::on_datagram(self, from, body)
    }

    fn on_timer(&mut self, _now: snipe_util::time::SimTime) {}

    fn next_deadline(&self) -> Option<snipe_util::time::SimTime> {
        None
    }

    fn drain(&mut self) -> Vec<Out> {
        std::mem::take(&mut self.out)
    }

    fn export_state(&self) -> Bytes {
        McastMember::export_state(self)
    }

    fn import_state(&mut self, bytes: Bytes, _now: snipe_util::time::SimTime) -> SnipeResult<()> {
        let restored = McastMember::import_state(bytes)?;
        *self = restored;
        Ok(())
    }

    fn quiescent(&self) -> bool {
        self.out.is_empty()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// How many routers a sender must initially target: "more than half".
pub fn majority(router_count: usize) -> usize {
    router_count / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_util::id::HostId;

    fn ep(h: u32, p: u16) -> Endpoint {
        Endpoint::new(HostId(h), p)
    }

    fn data(group: GroupId, origin: u64, seq: u64, ttl: u8) -> McastMsg {
        McastMsg::Data { group, origin, seq, ttl, payload: Bytes::from_static(b"m") }
    }

    #[test]
    fn codec_round_trip() {
        for msg in [
            data(7, 1, 2, 3),
            McastMsg::Join { group: 7, member: ep(1, 2) },
            McastMsg::Leave { group: 7, member: ep(1, 2) },
            McastMsg::Peer { group: 7, router: ep(3, 5) },
        ] {
            assert_eq!(McastMsg::decode(msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn router_fans_out_to_members_and_peers() {
        let mut r = McastRouter::new();
        let mut out = Vec::new();
        r.on_message(McastMsg::Join { group: 1, member: ep(10, 5) }, &mut out);
        r.on_message(McastMsg::Join { group: 1, member: ep(11, 5) }, &mut out);
        r.on_message(McastMsg::Peer { group: 1, router: ep(20, 5) }, &mut out);
        assert!(out.is_empty());
        r.on_message(data(1, 99, 0, 4), &mut out);
        let targets: Vec<Endpoint> = out
            .iter()
            .map(|o| match o {
                Out::Send { to, .. } => *to,
                _ => panic!("unexpected"),
            })
            .collect();
        assert!(targets.contains(&ep(10, 5)));
        assert!(targets.contains(&ep(11, 5)));
        assert!(targets.contains(&ep(20, 5)));
        assert_eq!(targets.len(), 3);
    }

    #[test]
    fn duplicates_suppressed() {
        let mut r = McastRouter::new();
        let mut out = Vec::new();
        r.on_message(McastMsg::Join { group: 1, member: ep(10, 5) }, &mut out);
        r.on_message(data(1, 99, 0, 4), &mut out);
        let first = out.len();
        r.on_message(data(1, 99, 0, 4), &mut out);
        assert_eq!(out.len(), first, "duplicate must not refan");
        assert_eq!(r.duplicates, 1);
    }

    #[test]
    fn ttl_stops_relay_but_not_delivery() {
        let mut r = McastRouter::new();
        let mut out = Vec::new();
        r.on_message(McastMsg::Join { group: 1, member: ep(10, 5) }, &mut out);
        r.on_message(McastMsg::Peer { group: 1, router: ep(20, 5) }, &mut out);
        r.on_message(data(1, 99, 0, 0), &mut out);
        assert_eq!(out.len(), 1); // member only, no peer relay
    }

    #[test]
    fn leave_removes_member() {
        let mut r = McastRouter::new();
        let mut out = Vec::new();
        r.on_message(McastMsg::Join { group: 1, member: ep(10, 5) }, &mut out);
        r.on_message(McastMsg::Leave { group: 1, member: ep(10, 5) }, &mut out);
        r.on_message(data(1, 99, 0, 4), &mut out);
        assert!(out.is_empty());
        assert!(r.members(1).is_empty());
    }

    #[test]
    fn member_dedup_exactly_once() {
        let mut m = McastMember::new();
        assert!(m.accept(1, 9, 0, Bytes::from_static(b"x")).is_some());
        assert!(m.accept(1, 9, 0, Bytes::from_static(b"x")).is_none());
        assert!(m.accept(1, 9, 1, Bytes::from_static(b"y")).is_some());
        assert!(m.accept(2, 9, 0, Bytes::from_static(b"z")).is_some());
    }

    #[test]
    fn member_seq_allocation_monotonic() {
        let mut m = McastMember::new();
        assert_eq!(m.next_seq(1), 0);
        assert_eq!(m.next_seq(1), 1);
        assert_eq!(m.next_seq(2), 0);
    }

    #[test]
    fn majority_rule() {
        assert_eq!(majority(1), 1);
        assert_eq!(majority(2), 2);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(5), 3);
    }

    #[test]
    fn member_driver_delivers_fresh_data_exactly_once() {
        use crate::driver::Driver;
        let mut m = McastMember::new();
        let body = data(7, 42, 0, 3).encode();
        m.on_datagram(ep(1, 5), body.clone()).unwrap();
        m.on_datagram(ep(2, 5), body.clone()).unwrap(); // dup via second router
        let outs = Driver::drain(&mut m);
        assert_eq!(outs.len(), 1);
        let Out::Deliver { proto, from_key, msg, .. } = &outs[0] else {
            panic!("expected Deliver");
        };
        assert_eq!(*proto, crate::frame::Proto::Mcast);
        assert_eq!(*from_key, 42);
        let decoded = McastMsg::decode(msg.clone()).unwrap();
        assert_eq!(decoded, data(7, 42, 0, 3));
        assert!(m.quiescent());
    }

    #[test]
    fn member_driver_ignores_control_messages() {
        use crate::driver::Driver;
        let mut m = McastMember::new();
        m.on_datagram(ep(1, 5), McastMsg::Join { group: 1, member: ep(9, 9) }.encode()).unwrap();
        m.on_datagram(ep(1, 5), McastMsg::Peer { group: 1, router: ep(9, 9) }.encode()).unwrap();
        assert!(Driver::drain(&mut m).is_empty());
        assert!(m.on_datagram(ep(1, 5), Bytes::from_static(b"\xff")).is_err());
    }

    #[test]
    fn member_state_round_trips_and_keeps_dedup() {
        let mut m = McastMember::new();
        assert!(m.accept(1, 9, 0, Bytes::new()).is_some());
        assert!(m.accept(1, 9, 1, Bytes::new()).is_some());
        assert!(m.accept(2, 8, 0, Bytes::new()).is_some());
        assert_eq!(m.next_seq(5), 0);
        assert_eq!(m.next_seq(5), 1);

        let snap = m.export_state();
        let mut r = McastMember::import_state(snap.clone()).unwrap();
        // Snapshot encoding is deterministic.
        assert_eq!(r.export_state(), snap);
        // Dedup state survived: the old messages are still duplicates.
        assert!(r.accept(1, 9, 0, Bytes::new()).is_none());
        assert!(r.accept(1, 9, 1, Bytes::new()).is_none());
        assert!(r.accept(2, 8, 0, Bytes::new()).is_none());
        assert!(r.accept(1, 9, 2, Bytes::new()).is_some());
        // Sequence allocation continues where it left off.
        assert_eq!(r.next_seq(5), 2);
    }

    #[test]
    fn flood_covers_router_mesh() {
        // Three routers in a line: r0 - r1 - r2; member on r2.
        // A message entering r0 must reach the member via flooding.
        let mut routers = [McastRouter::new(), McastRouter::new(), McastRouter::new()];
        let eps = [ep(0, 5), ep(1, 5), ep(2, 5)];
        let mut out = Vec::new();
        routers[0].on_message(McastMsg::Peer { group: 1, router: eps[1] }, &mut out);
        routers[1].on_message(McastMsg::Peer { group: 1, router: eps[0] }, &mut out);
        routers[1].on_message(McastMsg::Peer { group: 1, router: eps[2] }, &mut out);
        routers[2].on_message(McastMsg::Peer { group: 1, router: eps[1] }, &mut out);
        routers[2].on_message(McastMsg::Join { group: 1, member: ep(9, 7) }, &mut out);
        // Inject at r0 and shuttle.
        let mut inbox: Vec<(usize, McastMsg)> = vec![(0, data(1, 42, 0, 8))];
        let mut member_got = 0;
        while let Some((ri, msg)) = inbox.pop() {
            let mut outs = Vec::new();
            routers[ri].on_message(msg, &mut outs);
            for o in outs {
                let Out::Send { to, bytes, .. } = o else {
                    continue;
                };
                let (_, body) = crate::frame::open(bytes).unwrap();
                let m = McastMsg::decode(body).unwrap();
                if to == ep(9, 7) {
                    member_got += 1;
                } else if let Some(i) = eps.iter().position(|&e| e == to) {
                    inbox.push((i, m));
                }
            }
        }
        assert_eq!(member_got, 1);
    }
}
