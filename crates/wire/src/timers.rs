//! Shared hierarchical timer wheel for every wire driver.
//!
//! PR 2 taught us that per-driver deadline bookkeeping is where wedges
//! breed: SRUDP kept its own `sack_deadline` option and an RTO scan,
//! Rstream kept a per-connection `rto_deadline`, and each one had to
//! re-derive "what fires next" correctly under host outages. This
//! module centralises all of that: drivers schedule opaque tokens
//! against a [`TimerWheel`] and get back, on every [`TimerWheel::expire_into`],
//! the set of tokens whose deadline has passed. The wheel is the *only*
//! timer source in `crates/wire`.
//!
//! Two properties matter more than raw speed here:
//!
//! 1. **`next_deadline` is exact.** The netsim [`TimerGate`] pattern
//!    arms a wake at `next_deadline + 1µs`; a slot-granular answer
//!    (rounded down ~131µs) would cause spurious-wake loops where the
//!    gate fires, nothing is due, and the stack re-arms at the same
//!    rounded instant forever. The wheel therefore keeps an
//!    authoritative `token → deadline` map and answers `next_deadline`
//!    from it, using the slot hierarchy only to make expiry cheap.
//!
//! 2. **Arbitrary forward jumps are cheap.** Experiment E3 jumps the
//!    sim clock by days, and a host coming back from a long outage
//!    (the HostUp wedge class) re-enters the wheel far ahead of where
//!    it last expired. Each level sweeps at most one full rotation per
//!    expiry call, so a year-long jump costs `LEVELS × SLOTS` slot
//!    visits, not one visit per elapsed slot.
//!
//! Firing is allowed to be *early-tolerant*: a driver's fire handler
//! must re-check its own protocol state (is this retransmit actually
//! due?) and reschedule if not, exactly as SRUDP's RTO scan always
//! did. That keeps the wheel simple — a cancelled or rescheduled token
//! leaves a stale slot entry behind which is discarded lazily when the
//! slot is swept.
//!
//! [`TimerGate`]: snipe_netsim::actor::TimerGate

use std::collections::HashMap;
use std::hash::Hash;

use snipe_util::time::SimTime;

/// Number of hierarchy levels.
const LEVELS: usize = 4;
/// Slots per level. Power of two so slot indexing is a shift+mask.
const SLOTS: usize = 64;
/// Level-0 slot width exponent: 2^17 ns ≈ 131 µs, comfortably below
/// the minimum RTO (2 ms) so level 0 has real resolution, while the
/// top level spans ~36 minutes before overflow.
const BASE_SHIFT: u32 = 17;
/// Each level is SLOTS (2^6) times coarser than the one below.
const LEVEL_BITS: u32 = 6;

#[inline]
fn shift(level: usize) -> u32 {
    BASE_SHIFT + LEVEL_BITS * level as u32
}

/// Nanoseconds covered by one full rotation of `level`.
#[inline]
fn range(level: usize) -> u64 {
    (SLOTS as u64) << shift(level)
}

/// A hierarchical timer wheel over copyable tokens.
///
/// Tokens are whatever a driver uses to name a deadline: SRUDP uses
/// `(peer_key, TimerKind)`, Rstream uses a connection id. Scheduling
/// the same token again *replaces* its deadline ([`schedule`]) or
/// keeps the earlier of the two ([`schedule_min`]); the authoritative
/// deadline lives in a side map, so stale slot entries are inert.
///
/// [`schedule`]: TimerWheel::schedule
/// [`schedule_min`]: TimerWheel::schedule_min
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// Authoritative deadlines. A slot entry whose `(token, deadline)`
    /// pair is absent here is stale and is dropped on sweep.
    live: HashMap<T, SimTime>,
    /// `LEVELS × SLOTS` buckets of `(token, deadline)`.
    slots: Vec<Vec<(T, SimTime)>>,
    /// Deadlines beyond the top level's range, re-filed as time passes.
    overflow: Vec<(T, SimTime)>,
    /// The instant of the last `expire_into` call; slot placement and
    /// sweep ranges are computed relative to this.
    last: SimTime,
}

impl<T: Copy + Eq + Hash> TimerWheel<T> {
    /// An empty wheel positioned at the start of the simulation.
    pub fn new() -> Self {
        TimerWheel {
            live: HashMap::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            last: SimTime::ZERO,
        }
    }

    /// Number of live (scheduled, not yet fired or cancelled) tokens.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The exact earliest live deadline, if any.
    ///
    /// O(live tokens): drivers keep one or two tokens per peer or
    /// connection, so this is a scan over a handful of entries — far
    /// cheaper than the per-fragment inflight scans it replaced.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.live.values().min().copied()
    }

    /// The live deadline for `token`, if scheduled.
    pub fn deadline_of(&self, token: T) -> Option<SimTime> {
        self.live.get(&token).copied()
    }

    /// Schedule `token` at `at`, replacing any existing deadline.
    pub fn schedule(&mut self, token: T, at: SimTime) {
        self.live.insert(token, at);
        self.file(token, at);
    }

    /// Schedule `token` at `at` unless it is already scheduled earlier.
    pub fn schedule_min(&mut self, token: T, at: SimTime) {
        match self.live.get(&token) {
            Some(&cur) if cur <= at => {}
            _ => self.schedule(token, at),
        }
    }

    /// Cancel `token`'s deadline. The slot entry is left behind and
    /// discarded lazily; cancelling an unscheduled token is a no-op.
    pub fn cancel(&mut self, token: T) {
        self.live.remove(&token);
    }

    /// Drop every deadline.
    pub fn clear(&mut self) {
        self.live.clear();
        for slot in &mut self.slots {
            slot.clear();
        }
        self.overflow.clear();
    }

    /// File a `(token, deadline)` pair into the bucket hierarchy,
    /// relative to the wheel's current position `self.last`.
    fn file(&mut self, token: T, at: SimTime) {
        let delta = at.as_nanos().saturating_sub(self.last.as_nanos());
        // A deadline at or before the wheel's position goes into the
        // *current* level-0 slot (always re-swept), never a past slot.
        let eff = at.as_nanos().max(self.last.as_nanos());
        for level in 0..LEVELS {
            if delta < range(level) {
                let slot = (eff >> shift(level)) as usize & (SLOTS - 1);
                self.slots[level * SLOTS + slot].push((token, at));
                return;
            }
        }
        self.overflow.push((token, at));
    }

    /// Advance the wheel to `now`, appending every token whose
    /// deadline has passed to `due` (in no particular order) and
    /// removing it from the wheel. Tokens still in the future cascade
    /// down to finer levels as their slots are entered.
    ///
    /// `due` is an out-parameter so steady-state expiry with nothing
    /// due performs no allocation.
    pub fn expire_into(&mut self, now: SimTime, due: &mut Vec<T>) {
        let prev = self.last;
        let now = now.max(prev);
        self.last = now; // re-files during the sweep are relative to `now`

        for level in 0..LEVELS {
            let a = prev.as_nanos() >> shift(level);
            let b = now.as_nanos() >> shift(level);
            // Sweep the slot we were in plus every slot entered since;
            // one full rotation covers everything filed at this level.
            let steps = (b - a).min(SLOTS as u64 - 1);
            for s in 0..=steps {
                let idx = level * SLOTS + ((a + s) as usize & (SLOTS - 1));
                self.sweep(idx, level, now, due);
            }
        }

        if !self.overflow.is_empty() {
            let mut i = 0;
            while i < self.overflow.len() {
                let (token, at) = self.overflow[i];
                if self.live.get(&token) != Some(&at) {
                    self.overflow.swap_remove(i);
                } else if at <= now {
                    self.live.remove(&token);
                    due.push(token);
                    self.overflow.swap_remove(i);
                } else if at.as_nanos() - now.as_nanos() < range(LEVELS - 1) {
                    self.overflow.swap_remove(i);
                    self.file(token, at);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Sweep one bucket: fire due entries, drop stale ones, cascade
    /// future entries that now fit a finer level.
    fn sweep(&mut self, idx: usize, level: usize, now: SimTime, due: &mut Vec<T>) {
        let mut i = 0;
        while i < self.slots[idx].len() {
            let (token, at) = self.slots[idx][i];
            if self.live.get(&token) != Some(&at) {
                self.slots[idx].swap_remove(i);
                continue;
            }
            if at <= now {
                self.live.remove(&token);
                due.push(token);
                self.slots[idx].swap_remove(i);
                continue;
            }
            // Future deadline. If it still belongs exactly here
            // relative to `now`, leave it; otherwise re-file (it
            // cascades toward level 0 as its slot is entered).
            let delta = at.as_nanos() - now.as_nanos();
            let eff_slot = (at.as_nanos() >> shift(level)) as usize & (SLOTS - 1);
            let here = idx - level * SLOTS;
            if delta < range(level) && (level == 0 || delta >= range(level - 1)) && eff_slot == here
            {
                i += 1;
                continue;
            }
            self.slots[idx].swap_remove(i);
            self.file(token, at);
        }
    }
}

impl<T: Copy + Eq + Hash> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_util::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn drain(w: &mut TimerWheel<u32>, now: SimTime) -> Vec<u32> {
        let mut due = Vec::new();
        w.expire_into(now, &mut due);
        due.sort_unstable();
        due
    }

    #[test]
    fn fires_exactly_at_deadline() {
        let mut w = TimerWheel::new();
        w.schedule(1u32, t(5));
        assert_eq!(w.next_deadline(), Some(t(5)));
        assert!(drain(&mut w, t(4)).is_empty());
        assert_eq!(drain(&mut w, t(5)), vec![1]);
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn next_deadline_is_exact_not_slot_granular() {
        let mut w = TimerWheel::new();
        let odd = SimTime::from_nanos(123_457); // not a slot boundary
        w.schedule(7u32, odd);
        assert_eq!(w.next_deadline(), Some(odd));
    }

    #[test]
    fn schedule_replaces_and_schedule_min_keeps_earlier() {
        let mut w = TimerWheel::new();
        w.schedule(1u32, t(10));
        w.schedule(1u32, t(20));
        assert_eq!(w.next_deadline(), Some(t(20)));
        w.schedule_min(1u32, t(30)); // later: ignored
        assert_eq!(w.deadline_of(1), Some(t(20)));
        w.schedule_min(1u32, t(15)); // earlier: taken
        assert_eq!(w.deadline_of(1), Some(t(15)));
        assert_eq!(drain(&mut w, t(15)), vec![1]);
    }

    #[test]
    fn cancel_prevents_firing_and_stale_entries_are_inert() {
        let mut w = TimerWheel::new();
        w.schedule(1u32, t(5));
        w.schedule(2u32, t(5));
        w.cancel(1);
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, t(6)), vec![2]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadline_fires_on_next_expiry() {
        let mut w = TimerWheel::new();
        let mut due = Vec::new();
        w.expire_into(t(100), &mut due); // advance wheel first
        w.schedule(9u32, t(50)); // already in the past
        assert_eq!(w.next_deadline(), Some(t(50)));
        assert_eq!(drain(&mut w, t(100)), vec![9]);
    }

    #[test]
    fn multi_level_cascade_fires_at_the_right_time() {
        let mut w = TimerWheel::new();
        // Deadlines spanning all levels: 1ms (L0), 100ms (L1), 5s (L2),
        // 10min (L3) and 2h (overflow).
        w.schedule(0u32, t(1));
        w.schedule(1u32, t(100));
        w.schedule(2u32, t(5_000));
        w.schedule(3u32, t(600_000));
        w.schedule(4u32, t(7_200_000));
        // Step through in coarse increments; each must fire only once
        // its deadline has passed, never before.
        let mut fired = Vec::new();
        let mut clock = SimTime::ZERO;
        while clock < t(8_000_000) {
            clock = clock + SimDuration::from_millis(37);
            let mut due = Vec::new();
            w.expire_into(clock, &mut due);
            for token in due {
                let dl = [t(1), t(100), t(5_000), t(600_000), t(7_200_000)][token as usize];
                assert!(dl <= clock, "token {token} fired early at {clock:?}");
                assert!(
                    clock.since(dl) < SimDuration::from_millis(38),
                    "token {token} fired late: deadline {dl:?}, now {clock:?}"
                );
                fired.push(token);
            }
        }
        fired.sort_unstable();
        assert_eq!(fired, vec![0, 1, 2, 3, 4]);
        assert!(w.is_empty());
    }

    #[test]
    fn huge_forward_jump_fires_everything_cheaply() {
        let mut w = TimerWheel::new();
        for i in 0..1000u32 {
            w.schedule(i, t(1 + i as u64 * 13));
        }
        // A year-long jump (experiment E3 scale) must deliver all of
        // them in one call.
        let year = SimTime::from_nanos(365 * 86_400 * 1_000_000_000);
        let due = drain(&mut w, year);
        assert_eq!(due.len(), 1000);
        assert!(w.is_empty());
    }

    #[test]
    fn reschedule_after_fire_works_across_rotations() {
        // Model an RTO loop: fire, re-arm, fire again, many times.
        let mut w = TimerWheel::new();
        let mut clock = SimTime::ZERO;
        w.schedule(1u32, clock + SimDuration::from_millis(3));
        let mut fires = 0;
        for _ in 0..10_000 {
            clock = clock + SimDuration::from_micros(500);
            let mut due = Vec::new();
            w.expire_into(clock, &mut due);
            if !due.is_empty() {
                fires += 1;
                w.schedule(1u32, clock + SimDuration::from_millis(3));
            }
        }
        // 10k * 0.5ms = 5s of sim time, one fire per ~3–3.5ms.
        assert!((1400..=1700).contains(&fires), "fires = {fires}");
    }

    #[test]
    fn interleaved_schedule_cancel_storm_stays_consistent() {
        // Pseudo-random storm cross-checked against a naive map.
        let mut w = TimerWheel::new();
        let mut model: HashMap<u32, SimTime> = HashMap::new();
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        let mut clock = SimTime::ZERO;
        for step in 0..20_000u64 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let token = (rng >> 33) as u32 % 64;
            match rng % 5 {
                0 | 1 => {
                    let dl = clock + SimDuration::from_nanos(1 + (rng >> 7) % 50_000_000);
                    w.schedule(token, dl);
                    model.insert(token, dl);
                }
                2 => {
                    let dl = clock + SimDuration::from_nanos(1 + (rng >> 7) % 50_000_000);
                    w.schedule_min(token, dl);
                    let e = model.entry(token).or_insert(dl);
                    if dl < *e {
                        *e = dl;
                    }
                }
                3 => {
                    w.cancel(token);
                    model.remove(&token);
                }
                _ => {
                    clock = clock + SimDuration::from_nanos((rng >> 11) % 3_000_000);
                    let mut due = Vec::new();
                    w.expire_into(clock, &mut due);
                    for tkn in due {
                        let dl = model.remove(&tkn).expect("fired token not in model");
                        assert!(dl <= clock, "step {step}: early fire");
                    }
                    // Nothing due may remain in the model.
                    for (tkn, dl) in &model {
                        assert!(*dl > clock, "step {step}: token {tkn} missed (due {dl:?})");
                    }
                }
            }
            assert_eq!(w.next_deadline(), model.values().min().copied(), "step {step}");
        }
    }
}
