//! SRUDP — SNIPE's selective re-send UDP protocol (paper §6).
//!
//! A reliable, fragmenting, FIFO-per-peer datagram protocol:
//!
//! * messages are split into numbered fragments sent under a sliding
//!   window;
//! * the receiver returns **selective acknowledgements** (a bitmap per
//!   message), so only genuinely missing fragments are re-sent — the
//!   "selective re-send" the paper names;
//! * RTO with RTT estimation (Karn-style: no samples from retransmits)
//!   and exponential backoff recovers from total loss;
//! * peers are identified by a stable **node key**, not by endpoint:
//!   when a process migrates (§5.6) the key→endpoint mapping changes
//!   and retransmissions flow to the new location, which is how SNIPE
//!   guarantees "no loss of data while migration is in progress".
//!
//! The implementation is sans-IO: [`Srudp::send_message`],
//! [`Srudp::on_packet`] and [`Srudp::on_timer`] mutate the state
//! machine and queue [`Out`] actions retrieved with [`Srudp::drain`].

use std::collections::{BTreeMap, HashMap, VecDeque};

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_netsim::trace::{self, TraceKind};
use snipe_util::codec::{Decoder, Encoder};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::time::{SimDuration, SimTime};

use crate::fec::{self, FragStrategy};
use crate::frag::{split, ReassemblySet};
use crate::timers::TimerWheel;
use crate::Out;

/// Stable logical identity of a wire peer (a SNIPE process or daemon).
pub type NodeKey = u64;

/// What a scheduled wheel token means for a peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum TimerKind {
    /// Retransmission timeout: the earliest in-flight fragment's RTO.
    Rto,
    /// Delayed-ACK flush for the pending unsacked message.
    Sack,
    /// Stale partial-reassembly sweep (bounded receiver memory).
    Evict,
}

/// SRUDP tuning knobs.
#[derive(Clone, Debug)]
pub struct SrudpConfig {
    /// Payload bytes per DATA packet.
    pub frag_size: usize,
    /// Maximum unacknowledged DATA packets in flight per peer.
    pub window: usize,
    /// Receiver sends a SACK after this many DATA packets of a message.
    pub ack_every: usize,
    /// Receiver flushes a SACK at most this long after the first
    /// unacknowledged DATA of a message (delayed-ACK bound; keeps small
    /// sender windows from stalling until `ack_every` accumulates).
    pub ack_delay: SimDuration,
    /// Initial retransmission timeout.
    pub rto_initial: SimDuration,
    /// RTO clamp floor.
    pub rto_min: SimDuration,
    /// RTO clamp ceiling.
    pub rto_max: SimDuration,
    /// Give up on a fragment after this many retransmissions.
    pub max_retries: u32,
    /// How multi-fragment messages go on the wire: plain numbered
    /// fragments, or `2b-1` Reed-Solomon shares of which any `b`
    /// reconstruct ([`crate::fec`]). Per-driver: flipping this changes
    /// nothing for [`Srudp::send_message`] callers.
    pub frag_strategy: FragStrategy,
}

impl Default for SrudpConfig {
    fn default() -> Self {
        SrudpConfig {
            frag_size: 1400,
            window: 64,
            ack_every: 8,
            ack_delay: SimDuration::from_millis(5),
            rto_initial: SimDuration::from_millis(100),
            rto_min: SimDuration::from_millis(2),
            rto_max: SimDuration::from_secs(4),
            max_retries: 12,
            frag_strategy: FragStrategy::Plain,
        }
    }
}

const KIND_DATA: u8 = 1;
const KIND_SACK: u8 = 2;
const KIND_FEC: u8 = 3;

/// How long a partial reassembly may sit with no fresh fragment before
/// the sweep evicts it. Longer than any in-contract sender keeps
/// retrying (`max_retries` × `rto_max` ≈ 48 s with defaults), so only
/// genuinely abandoned transfers — a crashed sender, a never-completing
/// chaos plan — are dropped.
const REASM_TTL: SimDuration = SimDuration::from_secs(60);

/// Upper bound on fragments per message accepted from the wire. The
/// fragment count in a DATA header sizes the reassembly buffer, so a
/// corrupt/hostile value must not be allowed to drive allocation
/// (2^16 × frag_size comfortably covers any real message).
const MAX_FRAG_COUNT: u32 = 1 << 16;

struct InFlight {
    sent_at: SimTime,
    retries: u32,
    /// Karn: never sample RTT from retransmitted fragments.
    retransmitted: bool,
}

/// Erasure-coding parameters of one FEC-framed message, carried in
/// every share header so any quorum of shares is self-describing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FecMeta {
    /// Data-share count: any `b` of the `2b-1` shares reconstruct.
    b: u8,
    /// Original message length (strips the last chunk's padding).
    msg_len: u32,
    /// FNV-1a over the original message, verified after reconstruction.
    checksum: u32,
}

struct OutMsg {
    msg_id: u64,
    /// Plain fragments, or the `2b-1` shares when `fec` is set (the
    /// window / SACK / RTO machinery treats both identically).
    frags: Vec<Bytes>,
    acked: Vec<bool>,
    acked_count: usize,
    /// Next fragment index never yet transmitted.
    next_tx: usize,
    /// Set when `frags` are Reed-Solomon shares.
    fec: Option<FecMeta>,
}

/// Per-peer protocol state.
struct Peer {
    // --- sender side ---
    queue: VecDeque<OutMsg>,
    inflight: BTreeMap<(u64, u32), InFlight>,
    /// Index into `queue` of the first message that may still have
    /// untransmitted fragments (pump never rescans earlier entries).
    pump_hint: usize,
    /// Running count of unacked payload bytes in `queue`.
    backlog_bytes: usize,
    next_msg_id: u64,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    backoff: u32,
    consecutive_timeouts: u32,
    // --- receiver side ---
    reasm: ReassemblySet,
    /// Next msg id to deliver (FIFO per peer).
    next_deliver: u64,
    /// Completed-but-early messages awaiting FIFO order.
    held: BTreeMap<u64, Bytes>,
    /// DATA packets received since last SACK, per message.
    unsacked: HashMap<u64, usize>,
    /// Fragment counts of in-progress incoming messages (for bitmaps).
    counts: HashMap<u64, u32>,
    /// FEC parameters of in-progress incoming coded messages, pinned by
    /// the first share (later shares must agree — a forged or corrupt
    /// divergent header is a counted protocol error).
    fec_meta: HashMap<u64, FecMeta>,
    /// Message id awaiting a delayed-ACK flush; the deadline itself
    /// lives in the stack-shared [`TimerWheel`].
    pending_sack: Option<u64>,
    /// Consecutive duplicate DATA packets received — a sign our SACKs
    /// are not reaching the sender (path trouble on our return route).
    dup_streak: u32,
    /// When the last *fresh* (non-duplicate) DATA fragment was
    /// accepted. Duplicates arriving while fresh data still flows are
    /// retransmission noise, not return-route evidence; the stack only
    /// acts on `dup_streak` once fresh progress has stalled.
    last_fresh: Option<SimTime>,
}

impl Peer {
    fn new(cfg: &SrudpConfig) -> Peer {
        Peer {
            queue: VecDeque::new(),
            inflight: BTreeMap::new(),
            pump_hint: 0,
            backlog_bytes: 0,
            next_msg_id: 0,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: cfg.rto_initial,
            backoff: 0,
            consecutive_timeouts: 0,
            reasm: ReassemblySet::new(),
            next_deliver: 0,
            held: BTreeMap::new(),
            unsacked: HashMap::new(),
            counts: HashMap::new(),
            fec_meta: HashMap::new(),
            pending_sack: None,
            dup_streak: 0,
            last_fresh: None,
        }
    }
}

/// Counters exposed for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SrudpStats {
    /// DATA packets first-transmitted.
    pub data_sent: u64,
    /// DATA packets retransmitted.
    pub retransmits: u64,
    /// SACK packets sent.
    pub sacks_sent: u64,
    /// Messages fully delivered to the application.
    pub delivered: u64,
    /// Messages abandoned after `max_retries`.
    pub failed: u64,
    /// FEC-framed messages reconstructed from a share quorum and
    /// delivered.
    pub fec_delivered: u64,
    /// FEC reconstructions whose message checksum failed — corrupt or
    /// forged shares; the message was dropped, never delivered.
    pub fec_corrupt: u64,
    /// Partial reassemblies evicted (stale-sweep or per-peer cap never
    /// fires for in-contract senders; see the boundedness tests).
    pub reasm_evicted: u64,
}

/// The SRUDP endpoint state machine.
pub struct Srudp {
    my_key: NodeKey,
    cfg: SrudpConfig,
    peers: HashMap<NodeKey, Peer>,
    /// Current location of each peer.
    locations: HashMap<NodeKey, Endpoint>,
    /// All deadlines (per-peer RTO and delayed-ACK), shared-wheel
    /// scheduled; the only timer source in this driver.
    wheel: TimerWheel<(NodeKey, TimerKind)>,
    out: Vec<Out>,
    stats: SrudpStats,
}

impl Srudp {
    /// New endpoint with the given stable node key.
    pub fn new(my_key: NodeKey, cfg: SrudpConfig) -> Srudp {
        Srudp {
            my_key,
            cfg,
            peers: HashMap::new(),
            locations: HashMap::new(),
            wheel: TimerWheel::new(),
            out: Vec::new(),
            stats: SrudpStats::default(),
        }
    }

    /// Our node key.
    pub fn key(&self) -> NodeKey {
        self.my_key
    }

    /// Protocol counters.
    pub fn stats(&self) -> SrudpStats {
        self.stats
    }

    /// Record (or update) where a peer currently lives. Called by the
    /// stack from RC metadata lookups and on migration notifications.
    pub fn set_peer_endpoint(&mut self, key: NodeKey, ep: Endpoint) {
        self.locations.insert(key, ep);
    }

    /// Transmit any queued fragments toward a peer (call after its
    /// location becomes known).
    pub fn pump_peer(&mut self, now: SimTime, key: NodeKey) {
        self.pump(now, key);
    }

    /// The current known location of a peer.
    pub fn peer_endpoint(&self, key: NodeKey) -> Option<Endpoint> {
        self.locations.get(&key).copied()
    }

    /// Consecutive whole-RTO expiries against this peer with nothing
    /// acked — the stack's signal to try another route (§6 failover).
    pub fn peer_timeouts(&self, key: NodeKey) -> u32 {
        self.peers.get(&key).map_or(0, |p| p.consecutive_timeouts)
    }

    /// Consecutive duplicate DATA packets from a peer — evidence that
    /// our SACKs are being lost on the return path.
    pub fn peer_dup_streak(&self, key: NodeKey) -> u32 {
        self.peers.get(&key).map_or(0, |p| p.dup_streak)
    }

    /// Reset the duplicate streak (after acting on it).
    pub fn reset_dup_streak(&mut self, key: NodeKey) {
        if let Some(p) = self.peers.get_mut(&key) {
            p.dup_streak = 0;
        }
    }

    /// When the last fresh (non-duplicate) DATA fragment arrived from
    /// `key`, if any has. Duplicates seen while this is recent are
    /// retransmission noise, not evidence against the return route.
    pub fn peer_last_fresh(&self, key: NodeKey) -> Option<SimTime> {
        self.peers.get(&key).and_then(|p| p.last_fresh)
    }

    /// All peer keys with protocol state.
    pub fn peer_keys(&self) -> Vec<NodeKey> {
        let mut v = Vec::new();
        self.peer_keys_into(&mut v);
        v
    }

    /// Append all peer keys (sorted) to `into` without allocating when
    /// `into` has capacity — the scratch-buffer form of
    /// [`Self::peer_keys`] for steady-state callers.
    pub fn peer_keys_into(&self, into: &mut Vec<NodeKey>) {
        let start = into.len();
        into.extend(self.peers.keys().copied());
        into[start..].sort_unstable();
    }

    /// The smoothed RTT estimate toward a peer, once measured. Feeds
    /// the stack's [`PathSelector`](crate::path::PathSelector) scoring.
    pub fn peer_srtt(&self, key: NodeKey) -> Option<SimDuration> {
        self.peers.get(&key).and_then(|p| p.srtt)
    }

    /// Unsent + unacked payload bytes queued toward a peer.
    pub fn backlog(&self, key: NodeKey) -> usize {
        self.peers.get(&key).map_or(0, |p| p.backlog_bytes)
    }

    /// Unsent + unacked payload bytes across all peers.
    pub fn backlog_total(&self) -> usize {
        self.peers.values().map(|p| p.backlog_bytes).sum()
    }

    /// True when nothing is queued or in flight anywhere.
    pub fn quiescent(&self) -> bool {
        self.peers.values().all(|p| p.queue.is_empty() && p.inflight.is_empty())
    }

    /// Queue a message for reliable FIFO delivery to `to`.
    ///
    /// The peer's endpoint must be known (via [`Self::set_peer_endpoint`])
    /// by the time packets are emitted, or sends silently wait.
    ///
    /// Errors on a zero `frag_size` (hostile or misconfigured MTU
    /// state must be a counted error, not a panic); nothing is queued.
    pub fn send_message(&mut self, now: SimTime, to: NodeKey, msg: Bytes) -> SnipeResult<()> {
        let frag_size = self.cfg.frag_size;
        if frag_size == 0 {
            return Err(SnipeError::Protocol("zero fragment size".into()));
        }
        // FEC engages for multi-fragment messages within the field's
        // reach; one-fragment messages gain nothing from parity, and
        // larger-than-MAX_B messages fall back to plain fragmentation
        // rather than failing.
        let b = msg.len().div_ceil(frag_size);
        let (frags, fec) =
            if self.cfg.frag_strategy == FragStrategy::Fec && (2..=fec::MAX_B).contains(&b) {
                let meta = FecMeta {
                    b: b as u8,
                    msg_len: msg.len() as u32,
                    checksum: fec::msg_checksum(&msg),
                };
                (fec::encode(&msg, b)?, Some(meta))
            } else {
                (split(&msg, frag_size)?, None)
            };
        let peer = self.peers.entry(to).or_insert_with(|| Peer::new(&self.cfg));
        let n = frags.len();
        let msg_id = peer.next_msg_id;
        peer.next_msg_id += 1;
        // Backlog counts wire payload: for FEC that includes parity
        // (the true cost of the transfer), and it matches the per-
        // fragment subtraction on SACK exactly.
        peer.backlog_bytes += frags.iter().map(|f| f.len()).sum::<usize>();
        peer.queue.push_back(OutMsg {
            msg_id,
            frags,
            acked: vec![false; n],
            acked_count: 0,
            next_tx: 0,
            fec,
        });
        self.pump(now, to);
        Ok(())
    }

    /// Earliest instant at which [`Self::on_timer`] needs to run.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.wheel.next_deadline()
    }

    /// Drain pending output actions.
    pub fn drain(&mut self) -> Vec<Out> {
        std::mem::take(&mut self.out)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_data(
        out: &mut Vec<Out>,
        stats: &mut SrudpStats,
        now: SimTime,
        peer: NodeKey,
        my_key: NodeKey,
        to_ep: Endpoint,
        msg_id: u64,
        frag_idx: u32,
        frag_count: u32,
        payload: &Bytes,
        retransmit: bool,
        fec: Option<FecMeta>,
    ) {
        let mut enc = Encoder::with_capacity(payload.len() + 40);
        match fec {
            None => {
                enc.put_u8(KIND_DATA);
                enc.put_u64(my_key);
                enc.put_u64(msg_id);
                enc.put_u32(frag_idx);
                enc.put_u32(frag_count);
                enc.put_bytes(payload);
            }
            Some(m) => {
                enc.put_u8(KIND_FEC);
                enc.put_u64(my_key);
                enc.put_u64(msg_id);
                enc.put_u32(frag_idx);
                enc.put_u8(m.b);
                enc.put_u32(m.msg_len);
                enc.put_u32(m.checksum);
                enc.put_bytes(payload);
            }
        }
        if retransmit {
            stats.retransmits += 1;
            if trace::enabled() {
                trace::record(now, TraceKind::Retransmit { peer, len: payload.len() as u32 });
            }
        } else {
            stats.data_sent += 1;
        }
        // Shares advertise their index so the stack can spray them
        // across distinct routes; plain fragments route normally.
        let spray = fec.map(|_| frag_idx);
        out.push(Out::Send { to: to_ep, via: None, spray, bytes: enc.finish() });
    }

    /// Fill the window toward a peer with untransmitted fragments.
    fn pump(&mut self, now: SimTime, key: NodeKey) {
        let Some(&ep) = self.locations.get(&key) else {
            return; // location unknown; stack will pump after resolving
        };
        let Some(peer) = self.peers.get_mut(&key) else {
            return;
        };
        while peer.inflight.len() < self.cfg.window {
            // Advance the cursor past fully-transmitted messages, then
            // take the next untransmitted fragment (skipping fragments
            // already acknowledged, e.g. after an imported checkpoint
            // reset the cursor).
            loop {
                let Some(m) = peer.queue.get_mut(peer.pump_hint) else {
                    return;
                };
                while m.next_tx < m.frags.len() && m.acked[m.next_tx] {
                    m.next_tx += 1;
                }
                if m.next_tx < m.frags.len() {
                    break;
                }
                peer.pump_hint += 1;
            }
            let m = peer.queue.get_mut(peer.pump_hint).expect("cursor in range");
            let idx = m.next_tx;
            m.next_tx += 1;
            let frag = m.frags[idx].clone();
            let count = m.frags.len() as u32;
            let msg_id = m.msg_id;
            let fec = m.fec;
            peer.inflight.insert(
                (msg_id, idx as u32),
                InFlight { sent_at: now, retries: 0, retransmitted: false },
            );
            self.wheel.schedule_min((key, TimerKind::Rto), now + peer.rto);
            Self::emit_data(
                &mut self.out,
                &mut self.stats,
                now,
                key,
                self.my_key,
                ep,
                msg_id,
                idx as u32,
                count,
                &frag,
                false,
                fec,
            );
        }
    }

    /// Handle an incoming SRUDP body (after the envelope is opened).
    pub fn on_packet(&mut self, now: SimTime, from_ep: Endpoint, body: Bytes) -> SnipeResult<()> {
        let mut dec = Decoder::new(body);
        match dec.get_u8()? {
            KIND_DATA => {
                let src_key = dec.get_u64()?;
                let msg_id = dec.get_u64()?;
                let frag_idx = dec.get_u32()?;
                let frag_count = dec.get_u32()?;
                let payload = dec.get_bytes()?;
                self.on_data(now, src_key, from_ep, msg_id, frag_idx, frag_count, payload, None)
            }
            KIND_FEC => {
                let src_key = dec.get_u64()?;
                let msg_id = dec.get_u64()?;
                let share_idx = dec.get_u32()?;
                let b = dec.get_u8()?;
                let msg_len = dec.get_u32()?;
                let checksum = dec.get_u32()?;
                let payload = dec.get_bytes()?;
                if !(2..=fec::MAX_B as u32).contains(&(b as u32)) {
                    return Err(SnipeError::Protocol(format!("unacceptable FEC b {b}")));
                }
                if msg_len == 0 {
                    return Err(SnipeError::Protocol("zero-length FEC message".into()));
                }
                let meta = FecMeta { b, msg_len, checksum };
                let total = 2 * b as u32 - 1;
                self.on_data(now, src_key, from_ep, msg_id, share_idx, total, payload, Some(meta))
            }
            KIND_SACK => {
                let src_key = dec.get_u64()?;
                let msg_id = dec.get_u64()?;
                let done = dec.get_bool()?;
                let bitmap = dec.get_bytes()?;
                self.on_sack(now, src_key, from_ep, msg_id, done, &bitmap);
                Ok(())
            }
            k => Err(SnipeError::Protocol(format!("unknown SRUDP kind {k}"))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        now: SimTime,
        src_key: NodeKey,
        from_ep: Endpoint,
        msg_id: u64,
        frag_idx: u32,
        frag_count: u32,
        payload: Bytes,
        fec: Option<FecMeta>,
    ) -> SnipeResult<()> {
        if frag_count == 0 || frag_count > MAX_FRAG_COUNT {
            return Err(SnipeError::Protocol(format!("unacceptable fragment count {frag_count}")));
        }
        // Reject before any per-message state exists: a bogus index
        // must not leave side-table entries behind (state poisoning).
        if frag_idx >= frag_count {
            return Err(SnipeError::Protocol(format!(
                "fragment index {frag_idx} out of range (count {frag_count})"
            )));
        }
        // Learn / refresh the peer's location from live traffic.
        self.locations.insert(src_key, from_ep);
        let ack_every = self.cfg.ack_every;
        let peer = self.peers.entry(src_key).or_insert_with(|| Peer::new(&self.cfg));
        // Already delivered? Re-SACK "done" so the sender frees state.
        if msg_id < peer.next_deliver || peer.held.contains_key(&msg_id) {
            peer.dup_streak += 1;
            Self::emit_done_sack(&mut self.out, &mut self.stats, self.my_key, from_ep, msg_id);
            return Ok(());
        }
        // Per-peer cap: creating one more partial beyond the cap
        // evicts the stalest entry *with* its side tables, so memory
        // stays bounded against a sender that never completes anything.
        if peer.reasm.received(msg_id) == 0
            && peer.reasm.in_progress() >= crate::frag::MAX_PARTIAL_MSGS
        {
            if let Some(victim) = peer.reasm.evict_stalest() {
                Self::forget_partial(peer, victim);
                self.stats.reasm_evicted += 1;
            }
        }
        // Every share of an FEC-framed message must carry the same
        // coding parameters; divergence is corruption made visible.
        if let Some(meta) = fec {
            let prev = peer.fec_meta.entry(msg_id).or_insert(meta);
            if *prev != meta {
                return Err(SnipeError::Protocol(format!(
                    "FEC share header diverges for msg {msg_id}"
                )));
            }
        } else if peer.fec_meta.contains_key(&msg_id) {
            return Err(SnipeError::Protocol(format!(
                "plain fragment for FEC-framed msg {msg_id}"
            )));
        }
        peer.counts.insert(msg_id, frag_count);
        let was_present = peer.reasm.has(msg_id, frag_idx as usize);
        if was_present {
            peer.dup_streak += 1;
        } else {
            peer.dup_streak = 0;
            peer.last_fresh = Some(now);
        }
        let completed =
            peer.reasm.insert(now, msg_id, frag_idx as usize, frag_count as usize, payload)?;
        // First partial arms the stale sweep (schedule_min keeps the
        // earliest pending deadline).
        if peer.reasm.in_progress() > 0 {
            self.wheel.schedule_min((src_key, TimerKind::Evict), now + REASM_TTL);
        }
        // A plain message is ready when every fragment arrived; an
        // FEC-framed one as soon as any `b` distinct shares are in.
        let ready: Option<Bytes> = match (completed, fec) {
            (Some(full), None) => Some(full),
            (Some(full), Some(meta)) => {
                // All 2b-1 shares piled up without the quorum path
                // firing (reachable via an imported checkpoint that
                // restored a near-complete partial). The buffer is the
                // shares concatenated in index order: slice them back
                // apart and decode as usual.
                let slen = full.len() / frag_count as usize;
                let shares: Vec<(u32, Bytes)> = (0..frag_count)
                    .map(|i| (i, full.slice(i as usize * slen..(i as usize + 1) * slen)))
                    .collect();
                match Self::fec_reconstruct(&mut self.stats, meta, &shares) {
                    Ok(msg) => Some(msg),
                    Err(e) => {
                        Self::forget_partial(peer, msg_id);
                        return Err(e);
                    }
                }
            }
            (None, Some(meta)) if peer.reasm.received(msg_id) >= meta.b as usize => {
                let shares = peer.reasm.take(msg_id).expect("quorum present");
                match Self::fec_reconstruct(&mut self.stats, meta, &shares) {
                    Ok(msg) => Some(msg),
                    Err(e) => {
                        // Drop the poisoned partial entirely; honest
                        // retransmissions rebuild it from scratch.
                        Self::forget_partial(peer, msg_id);
                        return Err(e);
                    }
                }
            }
            (None, _) => None,
        };
        match ready {
            Some(full_msg) => {
                peer.unsacked.remove(&msg_id);
                peer.counts.remove(&msg_id);
                peer.fec_meta.remove(&msg_id);
                peer.pending_sack = None;
                self.wheel.cancel((src_key, TimerKind::Sack));
                Self::emit_done_sack(&mut self.out, &mut self.stats, self.my_key, from_ep, msg_id);
                peer.held.insert(msg_id, full_msg);
                // FIFO delivery of any now-in-order messages.
                while let Some(m) = peer.held.remove(&peer.next_deliver) {
                    self.out.push(Out::Deliver {
                        proto: crate::frame::Proto::Srudp,
                        from_key: src_key,
                        from_ep,
                        msg: m,
                    });
                    self.stats.delivered += 1;
                    peer.next_deliver += 1;
                }
            }
            None => {
                let c = peer.unsacked.entry(msg_id).or_insert(0);
                *c += 1;
                if *c >= ack_every {
                    *c = 0;
                    peer.pending_sack = None;
                    self.wheel.cancel((src_key, TimerKind::Sack));
                    let missing = peer.reasm.missing(msg_id);
                    Self::emit_bitmap_sack(
                        &mut self.out,
                        &mut self.stats,
                        self.my_key,
                        from_ep,
                        msg_id,
                        frag_count,
                        &missing,
                    );
                } else if peer.pending_sack.is_none() {
                    peer.pending_sack = Some(msg_id);
                    self.wheel.schedule((src_key, TimerKind::Sack), now + self.cfg.ack_delay);
                }
            }
        }
        Ok(())
    }

    /// Reconstruct, integrity-check and account an FEC share quorum.
    /// A reconstruction that fails the message checksum is counted and
    /// surfaced as a `Protocol` error — it is *never* delivered.
    fn fec_reconstruct(
        stats: &mut SrudpStats,
        meta: FecMeta,
        shares: &[(u32, Bytes)],
    ) -> SnipeResult<Bytes> {
        let decoded = fec::decode(meta.b as usize, meta.msg_len as usize, shares)?;
        if fec::msg_checksum(&decoded) != meta.checksum {
            stats.fec_corrupt += 1;
            return Err(SnipeError::Protocol(format!(
                "FEC reconstruction failed message checksum (b {})",
                meta.b
            )));
        }
        stats.fec_delivered += 1;
        Ok(Bytes::from(decoded))
    }

    /// Drop a message's partial reassembly *and* its side tables.
    fn forget_partial(peer: &mut Peer, msg_id: u64) {
        peer.reasm.forget(msg_id);
        peer.counts.remove(&msg_id);
        peer.unsacked.remove(&msg_id);
        peer.fec_meta.remove(&msg_id);
        if peer.pending_sack == Some(msg_id) {
            peer.pending_sack = None;
        }
    }

    fn emit_done_sack(
        out: &mut Vec<Out>,
        stats: &mut SrudpStats,
        my_key: NodeKey,
        to: Endpoint,
        msg_id: u64,
    ) {
        let mut enc = Encoder::new();
        enc.put_u8(KIND_SACK);
        enc.put_u64(my_key);
        enc.put_u64(msg_id);
        enc.put_bool(true);
        enc.put_bytes(&[]);
        stats.sacks_sent += 1;
        out.push(Out::Send { to, via: None, spray: None, bytes: enc.finish() });
    }

    fn emit_bitmap_sack(
        out: &mut Vec<Out>,
        stats: &mut SrudpStats,
        my_key: NodeKey,
        to: Endpoint,
        msg_id: u64,
        frag_count: u32,
        missing: &[u32],
    ) {
        let mut bitmap = vec![0xFFu8; (frag_count as usize).div_ceil(8)];
        for &m in missing {
            bitmap[(m / 8) as usize] &= !(1 << (m % 8));
        }
        let mut enc = Encoder::new();
        enc.put_u8(KIND_SACK);
        enc.put_u64(my_key);
        enc.put_u64(msg_id);
        enc.put_bool(false);
        enc.put_bytes(&bitmap);
        stats.sacks_sent += 1;
        out.push(Out::Send { to, via: None, spray: None, bytes: enc.finish() });
    }

    fn on_sack(
        &mut self,
        now: SimTime,
        src_key: NodeKey,
        from_ep: Endpoint,
        msg_id: u64,
        done: bool,
        bitmap: &[u8],
    ) {
        self.locations.insert(src_key, from_ep);
        let Some(peer) = self.peers.get_mut(&src_key) else {
            return;
        };
        peer.consecutive_timeouts = 0;
        peer.backoff = 0;
        let Some(pos) = peer.queue.iter().position(|m| m.msg_id == msg_id) else {
            return; // already freed
        };
        // RTT sample from the newest acked, never-retransmitted fragment.
        let mut rtt_sample: Option<SimDuration> = None;
        let mut newly_acked: Vec<u32> = Vec::new();
        {
            let m = &mut peer.queue[pos];
            let count = m.frags.len() as u32;
            for idx in 0..count {
                let acked = if done {
                    true
                } else {
                    let byte = (idx / 8) as usize;
                    byte < bitmap.len() && bitmap[byte] & (1 << (idx % 8)) != 0
                };
                if acked && !m.acked[idx as usize] {
                    m.acked[idx as usize] = true;
                    m.acked_count += 1;
                    newly_acked.push(idx);
                }
            }
            for idx in &newly_acked {
                peer.backlog_bytes =
                    peer.backlog_bytes.saturating_sub(m.frags[*idx as usize].len());
                if let Some(f) = peer.inflight.remove(&(msg_id, *idx)) {
                    if !f.retransmitted {
                        rtt_sample = Some(now.saturating_since(f.sent_at));
                    }
                }
            }
            if m.acked_count == m.frags.len() {
                peer.queue.remove(pos);
                if pos < peer.pump_hint {
                    peer.pump_hint -= 1;
                }
                // Ensure no stale inflight entries remain for the message.
                peer.inflight.retain(|(mid, _), _| *mid != msg_id);
            }
        }
        if let Some(s) = rtt_sample {
            Self::update_rtt(peer, s, &self.cfg);
        }
        // Selective resend with gap semantics: a fragment is presumed
        // lost only if the receiver already holds a *later* fragment of
        // the same message (otherwise it may simply still be in
        // flight). This is the datagram analogue of fast retransmit.
        if !done {
            let ep = self.locations.get(&src_key).copied();
            if let (Some(ep), Some(m)) = (
                ep,
                self.peers
                    .get_mut(&src_key)
                    .and_then(|p| p.queue.iter_mut().find(|m| m.msg_id == msg_id)),
            ) {
                let count = m.frags.len() as u32;
                let highest_acked = (0..count).rev().find(|&idx| {
                    let byte = (idx / 8) as usize;
                    byte < bitmap.len() && bitmap[byte] & (1 << (idx % 8)) != 0
                });
                let Some(highest_acked) = highest_acked else {
                    self.pump(now, src_key);
                    return;
                };
                let fec = m.fec;
                let mut resend: Vec<(u32, Bytes)> = Vec::new();
                for idx in 0..highest_acked {
                    let byte = (idx / 8) as usize;
                    let acked = byte < bitmap.len() && bitmap[byte] & (1 << (idx % 8)) != 0;
                    if !acked && (idx as usize) < m.next_tx && !m.acked[idx as usize] {
                        resend.push((idx, m.frags[idx as usize].clone()));
                    }
                }
                let peer = self.peers.get_mut(&src_key).expect("peer exists");
                for (idx, frag) in resend {
                    let count_total = peer
                        .queue
                        .iter()
                        .find(|m| m.msg_id == msg_id)
                        .map(|m| m.frags.len() as u32)
                        .unwrap_or(count);
                    if let Some(f) = peer.inflight.get_mut(&(msg_id, idx)) {
                        f.sent_at = now;
                        f.retries += 1;
                        f.retransmitted = true;
                    } else {
                        peer.inflight.insert(
                            (msg_id, idx),
                            InFlight { sent_at: now, retries: 1, retransmitted: true },
                        );
                    }
                    self.wheel.schedule_min((src_key, TimerKind::Rto), now + peer.rto);
                    Self::emit_data(
                        &mut self.out,
                        &mut self.stats,
                        now,
                        src_key,
                        self.my_key,
                        ep,
                        msg_id,
                        idx,
                        count_total,
                        &frag,
                        true,
                        fec,
                    );
                }
            }
        }
        self.pump(now, src_key);
        // Fully drained flight: drop the RTO token so the deadline
        // report goes quiet with the peer.
        if let Some(p) = self.peers.get(&src_key) {
            if p.inflight.is_empty() {
                self.wheel.cancel((src_key, TimerKind::Rto));
            }
        }
    }

    fn update_rtt(peer: &mut Peer, sample: SimDuration, cfg: &SrudpConfig) {
        // RFC 6298 style.
        match peer.srtt {
            None => {
                peer.srtt = Some(sample);
                peer.rttvar = sample / 2;
            }
            Some(srtt) => {
                let diff = if srtt > sample { srtt - sample } else { sample - srtt };
                peer.rttvar = (peer.rttvar * 3 + diff) / 4;
                peer.srtt = Some((srtt * 7 + sample) / 8);
            }
        }
        let rto = peer.srtt.expect("just set") + peer.rttvar * 4;
        peer.rto = rto.clamp(cfg.rto_min, cfg.rto_max);
    }

    /// Serialize the complete protocol state (sender queues + receiver
    /// reassembly) for migration. In-flight bookkeeping is dropped: on
    /// import every unacked fragment is eligible for retransmission,
    /// and receivers deduplicate, so nothing is lost (§5.6).
    pub fn export_state(&self) -> Bytes {
        let mut e = Encoder::new();
        e.put_u64(self.my_key);
        let mut keys: Vec<NodeKey> = self.peers.keys().copied().collect();
        keys.sort_unstable();
        e.put_u32(keys.len() as u32);
        for k in keys {
            let p = &self.peers[&k];
            e.put_u64(k);
            match self.locations.get(&k) {
                Some(ep) => {
                    e.put_bool(true);
                    e.put_u32(ep.host.0);
                    e.put_u16(ep.port);
                }
                None => e.put_bool(false),
            }
            e.put_u64(p.next_msg_id);
            // Sender queue.
            e.put_u32(p.queue.len() as u32);
            for m in &p.queue {
                e.put_u64(m.msg_id);
                match m.fec {
                    Some(meta) => {
                        e.put_bool(true);
                        e.put_u8(meta.b);
                        e.put_u32(meta.msg_len);
                        e.put_u32(meta.checksum);
                    }
                    None => e.put_bool(false),
                }
                e.put_u32(m.frags.len() as u32);
                for (i, f) in m.frags.iter().enumerate() {
                    e.put_bool(m.acked[i]);
                    e.put_bytes(f);
                }
            }
            // Receiver state.
            e.put_u64(p.next_deliver);
            e.put_u32(p.held.len() as u32);
            for (id, msg) in &p.held {
                e.put_u64(*id);
                e.put_bytes(msg);
            }
            let partials = p.reasm.export();
            e.put_u32(partials.len() as u32);
            for (id, frags) in partials {
                e.put_u64(id);
                let count = p.counts.get(&id).copied().unwrap_or(frags.len() as u32);
                e.put_u32(count);
                match p.fec_meta.get(&id) {
                    Some(meta) => {
                        e.put_bool(true);
                        e.put_u8(meta.b);
                        e.put_u32(meta.msg_len);
                        e.put_u32(meta.checksum);
                    }
                    None => e.put_bool(false),
                }
                e.put_u32(frags.len() as u32);
                for f in frags {
                    match f {
                        Some(b) => {
                            e.put_bool(true);
                            e.put_bytes(&b);
                        }
                        None => e.put_bool(false),
                    }
                }
            }
        }
        e.finish()
    }

    /// Restore exported state into a fresh endpoint with the given
    /// configuration, as of `now` (restored partials get a fresh
    /// eviction TTL on the new host). The transmit cursors are reset
    /// so every unacked fragment is retransmitted.
    pub fn import_state(bytes: Bytes, cfg: SrudpConfig, now: SimTime) -> SnipeResult<Srudp> {
        let mut d = Decoder::new(bytes);
        let my_key = d.get_u64()?;
        let mut s = Srudp::new(my_key, cfg);
        let n_peers = d.get_u32()? as usize;
        for _ in 0..n_peers {
            let k = d.get_u64()?;
            if d.get_bool()? {
                let host = d.get_u32()?;
                let port = d.get_u16()?;
                s.locations.insert(k, Endpoint::new(snipe_util::id::HostId(host), port));
            }
            let mut peer = Peer::new(&s.cfg);
            peer.next_msg_id = d.get_u64()?;
            let n_msgs = d.get_u32()? as usize;
            for _ in 0..n_msgs {
                let msg_id = d.get_u64()?;
                let fec = if d.get_bool()? {
                    Some(FecMeta { b: d.get_u8()?, msg_len: d.get_u32()?, checksum: d.get_u32()? })
                } else {
                    None
                };
                let n_frags = d.get_u32()? as usize;
                // Every fragment costs ≥ 1 encoded byte, so a count
                // beyond the remaining payload is corrupt — reject it
                // before it sizes any allocation.
                if n_frags > d.remaining() {
                    return Err(SnipeError::Codec(format!(
                        "fragment count {n_frags} exceeds payload"
                    )));
                }
                let mut frags = Vec::with_capacity(n_frags);
                let mut acked = Vec::with_capacity(n_frags);
                let mut acked_count = 0;
                for _ in 0..n_frags {
                    let a = d.get_bool()?;
                    acked.push(a);
                    if a {
                        acked_count += 1;
                    }
                    frags.push(d.get_bytes()?);
                }
                let unacked: usize =
                    frags.iter().zip(&acked).filter(|(_, a)| !**a).map(|(f, _)| f.len()).sum();
                peer.backlog_bytes += unacked;
                peer.queue.push_back(OutMsg { msg_id, frags, acked, acked_count, next_tx: 0, fec });
            }
            peer.next_deliver = d.get_u64()?;
            let n_held = d.get_u32()? as usize;
            for _ in 0..n_held {
                let id = d.get_u64()?;
                peer.held.insert(id, d.get_bytes()?);
            }
            let n_partials = d.get_u32()? as usize;
            if n_partials > d.remaining() {
                return Err(SnipeError::Codec(format!(
                    "partial count {n_partials} exceeds payload"
                )));
            }
            let mut partials = Vec::with_capacity(n_partials);
            for _ in 0..n_partials {
                let id = d.get_u64()?;
                let count = d.get_u32()?;
                if d.get_bool()? {
                    let meta =
                        FecMeta { b: d.get_u8()?, msg_len: d.get_u32()?, checksum: d.get_u32()? };
                    peer.fec_meta.insert(id, meta);
                }
                let n = d.get_u32()? as usize;
                if n > d.remaining() {
                    return Err(SnipeError::Codec(format!(
                        "partial fragment count {n} exceeds payload"
                    )));
                }
                let mut frags = Vec::with_capacity(n);
                for _ in 0..n {
                    frags.push(if d.get_bool()? { Some(d.get_bytes()?) } else { None });
                }
                peer.counts.insert(id, count);
                partials.push((id, frags));
            }
            peer.reasm.import(now, partials);
            let arm_evict = peer.reasm.in_progress() > 0;
            s.peers.insert(k, peer);
            if arm_evict {
                s.wheel.schedule((k, TimerKind::Evict), now + REASM_TTL);
            }
        }
        d.expect_end()?;
        Ok(s)
    }

    /// Kick retransmission of everything unacked toward every peer
    /// (used right after an import, once locations are refreshed).
    pub fn retransmit_all(&mut self, now: SimTime) {
        // Sorted: pump order decides wire order, and wire order must
        // be a function of the seed, not of hash iteration.
        let keys = self.peer_keys();
        for k in keys {
            self.pump(now, k);
        }
    }

    /// Fire due wheel tokens: retransmit fragments whose RTO expired
    /// (escalating backoff) and flush due delayed SACKs. Safe to call
    /// early or spuriously — a token whose work turns out not to be
    /// due is re-armed at its true deadline without escalation, which
    /// is what makes the HostUp "fire everything on resurrection"
    /// pattern harmless.
    pub fn on_timer(&mut self, now: SimTime) {
        let mut due: Vec<(NodeKey, TimerKind)> = Vec::new();
        self.wheel.expire_into(now, &mut due);
        // Deterministic firing order (SACK flushes before RTO
        // escalations, peers by key), independent of wheel layout.
        due.sort_unstable_by_key(|&(k, kind)| (std::cmp::Reverse(kind as u8), k));
        for (key, kind) in due {
            match kind {
                TimerKind::Evict => self.fire_evict(now, key),
                TimerKind::Sack => self.fire_sack(now, key),
                TimerKind::Rto => self.fire_rto(now, key),
            }
        }
    }

    /// Stale partial-reassembly sweep: evict entries idle longer than
    /// [`REASM_TTL`] (with their side tables) and re-arm while partial
    /// state remains. Virtual-time driven, so fully deterministic.
    fn fire_evict(&mut self, now: SimTime, key: NodeKey) {
        let Some(peer) = self.peers.get_mut(&key) else {
            return;
        };
        for id in peer.reasm.evict_stale(now, REASM_TTL) {
            peer.counts.remove(&id);
            peer.unsacked.remove(&id);
            peer.fec_meta.remove(&id);
            if peer.pending_sack == Some(id) {
                peer.pending_sack = None;
            }
            self.stats.reasm_evicted += 1;
        }
        if peer.reasm.in_progress() > 0 {
            self.wheel.schedule((key, TimerKind::Evict), now + REASM_TTL);
        }
    }

    /// Delayed-ACK flush for a peer's pending unsacked message.
    fn fire_sack(&mut self, now: SimTime, key: NodeKey) {
        let Some(&ep) = self.locations.get(&key) else {
            // Location unknown (cannot happen for a peer we received
            // DATA from, but keep the deadline alive rather than lose
            // the flush).
            if self.peers.get(&key).is_some_and(|p| p.pending_sack.is_some()) {
                self.wheel.schedule((key, TimerKind::Sack), now + self.cfg.ack_delay);
            }
            return;
        };
        let Some(peer) = self.peers.get_mut(&key) else {
            return;
        };
        let Some(msg_id) = peer.pending_sack.take() else {
            return; // already flushed by ack_every; stale fire
        };
        peer.unsacked.insert(msg_id, 0);
        let count = peer.counts.get(&msg_id).copied().unwrap_or(0);
        let missing = peer.reasm.missing(msg_id);
        if count > 0 {
            Self::emit_bitmap_sack(
                &mut self.out,
                &mut self.stats,
                self.my_key,
                ep,
                msg_id,
                count,
                &missing,
            );
        }
    }

    /// RTO expiry against a peer: retransmit everything due, escalate
    /// backoff once per firing, re-arm for whatever remains in flight.
    fn fire_rto(&mut self, now: SimTime, key: NodeKey) {
        let Some(&ep) = self.locations.get(&key) else {
            // Can't retransmit anywhere yet; retry after one RTO so
            // the flight isn't orphaned when the location resolves.
            if let Some(p) = self.peers.get(&key) {
                if !p.inflight.is_empty() {
                    self.wheel.schedule((key, TimerKind::Rto), now + p.rto);
                }
            }
            return;
        };
        let Some(peer) = self.peers.get_mut(&key) else {
            return;
        };
        let rto = peer.rto;
        let mut expired: Vec<(u64, u32)> =
            peer.inflight.iter().filter(|(_, f)| f.sent_at + rto <= now).map(|(k, _)| *k).collect();
        if expired.is_empty() {
            // Early fire (flight shrank since arming): re-arm exactly.
            if let Some(min) = peer.inflight.values().map(|f| f.sent_at + rto).min() {
                self.wheel.schedule((key, TimerKind::Rto), min);
            }
            return;
        }
        expired.sort_unstable();
        peer.consecutive_timeouts += 1;
        peer.backoff = (peer.backoff + 1).min(10);
        peer.rto = (rto * 2).clamp(self.cfg.rto_min, self.cfg.rto_max);
        let mut gave_up: Vec<u64> = Vec::new();
        for (msg_id, idx) in expired {
            let f = peer.inflight.get_mut(&(msg_id, idx)).expect("expired entry");
            if f.retries >= self.cfg.max_retries {
                gave_up.push(msg_id);
                continue;
            }
            f.retries += 1;
            f.retransmitted = true;
            f.sent_at = now;
            let frag_data = peer
                .queue
                .iter()
                .find(|m| m.msg_id == msg_id)
                .map(|m| (m.frags[idx as usize].clone(), m.frags.len() as u32, m.fec));
            if let Some((frag, count, fec)) = frag_data {
                Self::emit_data(
                    &mut self.out,
                    &mut self.stats,
                    now,
                    key,
                    self.my_key,
                    ep,
                    msg_id,
                    idx,
                    count,
                    &frag,
                    true,
                    fec,
                );
            }
        }
        for msg_id in gave_up {
            peer.inflight.retain(|(mid, _), _| *mid != msg_id);
            if let Some(pos) = peer.queue.iter().position(|m| m.msg_id == msg_id) {
                let m = &peer.queue[pos];
                let unacked: usize = m
                    .frags
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !m.acked[*i])
                    .map(|(_, f)| f.len())
                    .sum();
                peer.backlog_bytes = peer.backlog_bytes.saturating_sub(unacked);
                peer.queue.remove(pos);
                if pos < peer.pump_hint {
                    peer.pump_hint -= 1;
                }
                self.stats.failed += 1;
            }
        }
        // Re-arm for the earliest surviving in-flight fragment.
        if let Some(min) = peer.inflight.values().map(|f| f.sent_at + peer.rto).min() {
            self.wheel.schedule((key, TimerKind::Rto), min);
        }
    }
}

impl crate::driver::Driver for Srudp {
    fn proto(&self) -> crate::frame::Proto {
        crate::frame::Proto::Srudp
    }

    fn on_datagram(&mut self, now: SimTime, from: Endpoint, body: Bytes) -> SnipeResult<()> {
        self.on_packet(now, from, body)
    }

    fn on_timer(&mut self, now: SimTime) {
        Srudp::on_timer(self, now);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        Srudp::next_deadline(self)
    }

    fn drain(&mut self) -> Vec<Out> {
        Srudp::drain(self)
    }

    fn export_state(&self) -> Bytes {
        Srudp::export_state(self)
    }

    fn import_state(&mut self, bytes: Bytes, now: SimTime) -> SnipeResult<()> {
        let mut restored = Srudp::import_state(bytes, self.cfg.clone(), now)?;
        restored.retransmit_all(now);
        *self = restored;
        Ok(())
    }

    fn quiescent(&self) -> bool {
        Srudp::quiescent(self)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_util::id::HostId;

    fn ep(h: u32, p: u16) -> Endpoint {
        Endpoint::new(HostId(h), p)
    }

    /// Shuttle packets between two endpoints with an optional drop
    /// filter; returns delivered messages per side.
    pub(super) fn shuttle(
        a: &mut Srudp,
        b: &mut Srudp,
        a_ep: Endpoint,
        b_ep: Endpoint,
        mut now: SimTime,
        mut drop: impl FnMut(usize) -> bool,
        steps: usize,
    ) -> (Vec<Bytes>, Vec<Bytes>, SimTime) {
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        let mut n = 0usize;
        for _ in 0..steps {
            let mut moved = false;
            for o in a.drain() {
                match o {
                    Out::Send { to, bytes, .. } => {
                        moved = true;
                        n += 1;
                        if drop(n) {
                            continue;
                        }
                        assert_eq!(to, b_ep, "packet to unexpected endpoint");
                        b.on_packet(now, a_ep, bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got_a.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            for o in b.drain() {
                match o {
                    Out::Send { to, bytes, .. } => {
                        moved = true;
                        n += 1;
                        if drop(n) {
                            continue;
                        }
                        assert_eq!(to, a_ep, "packet to unexpected endpoint");
                        a.on_packet(now, b_ep, bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got_b.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            if !moved {
                now = now + SimDuration::from_millis(30);
                a.on_timer(now);
                b.on_timer(now);
            }
            now = now + SimDuration::from_micros(100);
        }
        // Collect any remaining delivers.
        for o in a.drain() {
            if let Out::Deliver { msg, .. } = o {
                got_a.push(msg);
            }
        }
        for o in b.drain() {
            if let Out::Deliver { msg, .. } = o {
                got_b.push(msg);
            }
        }
        (got_a, got_b, now)
    }

    #[test]
    fn small_message_delivered() {
        let mut a = Srudp::new(1, SrudpConfig::default());
        let mut b = Srudp::new(2, SrudpConfig::default());
        a.set_peer_endpoint(2, ep(1, 5));
        a.send_message(SimTime::ZERO, 2, Bytes::from_static(b"hello")).unwrap();
        let (_, got_b, _) =
            shuttle(&mut a, &mut b, ep(0, 5), ep(1, 5), SimTime::ZERO, |_| false, 50);
        assert_eq!(got_b.len(), 1);
        assert_eq!(&got_b[0][..], b"hello");
        assert!(a.quiescent());
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let mut a = Srudp::new(1, SrudpConfig::default());
        let mut b = Srudp::new(2, SrudpConfig::default());
        a.set_peer_endpoint(2, ep(1, 5));
        let payload = Bytes::from((0..100_000u32).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
        a.send_message(SimTime::ZERO, 2, payload.clone()).unwrap();
        let (_, got_b, _) =
            shuttle(&mut a, &mut b, ep(0, 5), ep(1, 5), SimTime::ZERO, |_| false, 500);
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0], payload);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut a = Srudp::new(1, SrudpConfig::default());
        let mut b = Srudp::new(2, SrudpConfig::default());
        a.set_peer_endpoint(2, ep(1, 5));
        for i in 0..20u8 {
            a.send_message(SimTime::ZERO, 2, Bytes::from(vec![i; 10])).unwrap();
        }
        let (_, got_b, _) =
            shuttle(&mut a, &mut b, ep(0, 5), ep(1, 5), SimTime::ZERO, |_| false, 200);
        assert_eq!(got_b.len(), 20);
        for (i, m) in got_b.iter().enumerate() {
            assert_eq!(m[0] as usize, i);
        }
    }

    #[test]
    fn survives_heavy_loss() {
        let mut cfg = SrudpConfig::default();
        cfg.rto_initial = SimDuration::from_millis(10);
        let mut a = Srudp::new(1, cfg.clone());
        let mut b = Srudp::new(2, cfg);
        a.set_peer_endpoint(2, ep(1, 5));
        let payload = Bytes::from(vec![9u8; 50_000]);
        a.send_message(SimTime::ZERO, 2, payload.clone()).unwrap();
        // Drop every 3rd packet.
        let (_, got_b, _) =
            shuttle(&mut a, &mut b, ep(0, 5), ep(1, 5), SimTime::ZERO, |n| n % 3 == 0, 3000);
        assert_eq!(got_b.len(), 1, "stats: {:?} / {:?}", a.stats(), b.stats());
        assert_eq!(got_b[0], payload);
        assert!(a.stats().retransmits > 0, "loss must trigger selective resends");
    }

    #[test]
    fn bidirectional_traffic() {
        let mut a = Srudp::new(1, SrudpConfig::default());
        let mut b = Srudp::new(2, SrudpConfig::default());
        a.set_peer_endpoint(2, ep(1, 5));
        b.set_peer_endpoint(1, ep(0, 5));
        a.send_message(SimTime::ZERO, 2, Bytes::from_static(b"ping")).unwrap();
        b.send_message(SimTime::ZERO, 1, Bytes::from_static(b"pong")).unwrap();
        let (got_a, got_b, _) =
            shuttle(&mut a, &mut b, ep(0, 5), ep(1, 5), SimTime::ZERO, |_| false, 100);
        assert_eq!(&got_b[0][..], b"ping");
        assert_eq!(&got_a[0][..], b"pong");
    }

    #[test]
    fn duplicate_data_reacked_not_redelivered() {
        let mut a = Srudp::new(1, SrudpConfig::default());
        let mut b = Srudp::new(2, SrudpConfig::default());
        a.set_peer_endpoint(2, ep(1, 5));
        a.send_message(SimTime::ZERO, 2, Bytes::from_static(b"once")).unwrap();
        // Capture the DATA packet and play it twice.
        let outs = a.drain();
        let Out::Send { bytes, .. } = &outs[0] else { panic!("expected send") };
        b.on_packet(SimTime::ZERO, ep(0, 5), bytes.clone()).unwrap();
        b.on_packet(SimTime::ZERO, ep(0, 5), bytes.clone()).unwrap();
        let delivers = b.drain().into_iter().filter(|o| matches!(o, Out::Deliver { .. })).count();
        assert_eq!(delivers, 1);
        assert_eq!(b.stats().delivered, 1);
        assert!(b.stats().sacks_sent >= 2, "duplicate must be re-SACKed");
    }

    #[test]
    fn migration_retargets_retransmissions() {
        let mut cfg = SrudpConfig::default();
        cfg.rto_initial = SimDuration::from_millis(10);
        let mut a = Srudp::new(1, cfg.clone());
        let mut b = Srudp::new(2, cfg);
        a.set_peer_endpoint(2, ep(1, 5));
        a.send_message(SimTime::ZERO, 2, Bytes::from_static(b"follow me")).unwrap();
        // Drop everything sent to the old endpoint.
        for o in a.drain() {
            let Out::Send { to, .. } = o else { continue };
            assert_eq!(to, ep(1, 5));
        }
        // Peer migrates to a new host; location updated (as the core
        // layer would after an RC lookup).
        a.set_peer_endpoint(2, ep(7, 9));
        let now = SimTime::ZERO + SimDuration::from_millis(20);
        a.on_timer(now);
        let outs = a.drain();
        assert!(!outs.is_empty(), "RTO must retransmit");
        for o in &outs {
            if let Out::Send { to, bytes, .. } = o {
                assert_eq!(*to, ep(7, 9), "retransmit must go to the new location");
                b.on_packet(now, ep(0, 5), bytes.clone()).unwrap();
            }
        }
        let msgs: Vec<_> = b
            .drain()
            .into_iter()
            .filter_map(|o| match o {
                Out::Deliver { msg, .. } => Some(msg),
                _ => None,
            })
            .collect();
        assert_eq!(msgs.len(), 1);
        assert_eq!(&msgs[0][..], b"follow me");
    }

    #[test]
    fn gives_up_after_max_retries() {
        let mut cfg = SrudpConfig::default();
        cfg.rto_initial = SimDuration::from_millis(1);
        cfg.rto_min = SimDuration::from_millis(1);
        cfg.rto_max = SimDuration::from_millis(1);
        cfg.max_retries = 3;
        let mut a = Srudp::new(1, cfg);
        a.set_peer_endpoint(2, ep(1, 5));
        a.send_message(SimTime::ZERO, 2, Bytes::from_static(b"void")).unwrap();
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now = now + SimDuration::from_millis(2);
            a.on_timer(now);
            a.drain();
        }
        assert_eq!(a.stats().failed, 1);
        assert!(a.quiescent());
        assert!(a.peer_timeouts(2) >= 3);
    }

    #[test]
    fn rtt_estimation_tightens_rto() {
        let mut a = Srudp::new(1, SrudpConfig::default());
        let mut b = Srudp::new(2, SrudpConfig::default());
        a.set_peer_endpoint(2, ep(1, 5));
        // Several message exchanges with ~1ms RTT.
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            a.send_message(now, 2, Bytes::from(vec![0u8; 100])).unwrap();
            for o in a.drain() {
                if let Out::Send { bytes, .. } = o {
                    b.on_packet(now + SimDuration::from_micros(500), ep(0, 5), bytes).unwrap();
                }
            }
            now = now + SimDuration::from_millis(1);
            for o in b.drain() {
                if let Out::Send { bytes, .. } = o {
                    a.on_packet(now, ep(1, 5), bytes).unwrap();
                }
            }
        }
        let peer = a.peers.get(&2).unwrap();
        assert!(peer.srtt.is_some());
        assert!(peer.rto < SimDuration::from_millis(50), "rto {}", peer.rto);
    }

    #[test]
    fn malformed_packet_rejected() {
        let mut a = Srudp::new(1, SrudpConfig::default());
        let err = a.on_packet(SimTime::ZERO, ep(1, 5), Bytes::from_static(&[42])).unwrap_err();
        assert_eq!(err.kind(), "protocol");
        assert!(a.on_packet(SimTime::ZERO, ep(1, 5), Bytes::new()).is_err());
    }

    #[test]
    fn backlog_and_deadline_reporting() {
        let mut a = Srudp::new(1, SrudpConfig::default());
        assert!(a.next_deadline().is_none());
        a.set_peer_endpoint(2, ep(1, 5));
        a.send_message(SimTime::ZERO, 2, Bytes::from(vec![0u8; 5000])).unwrap();
        assert!(a.backlog(2) > 0);
        assert!(a.next_deadline().is_some());
    }

    #[test]
    fn empty_message_delivered() {
        let mut a = Srudp::new(1, SrudpConfig::default());
        let mut b = Srudp::new(2, SrudpConfig::default());
        a.set_peer_endpoint(2, ep(1, 5));
        a.send_message(SimTime::ZERO, 2, Bytes::new()).unwrap();
        let (_, got_b, _) =
            shuttle(&mut a, &mut b, ep(0, 5), ep(1, 5), SimTime::ZERO, |_| false, 50);
        assert_eq!(got_b.len(), 1);
        assert!(got_b[0].is_empty());
    }

    #[test]
    fn timeout_bookkeeping_resets_on_peer_recovery() {
        let cfg = SrudpConfig::default();
        let a_ep = ep(0, 5);
        let b_ep = ep(1, 5);
        let mut a = Srudp::new(1, cfg.clone());
        let mut b = Srudp::new(2, cfg.clone());
        a.set_peer_endpoint(2, b_ep);
        let mut now = SimTime::ZERO;
        a.send_message(now, 2, Bytes::from(vec![9u8; 500])).unwrap();
        // Black-hole the peer: fire timers until escalation piles up.
        let mut blackholed = 0u32;
        while a.peer_timeouts(2) < 5 {
            for o in a.drain() {
                if matches!(o, Out::Send { .. }) {
                    blackholed += 1;
                }
            }
            now = now + SimDuration::from_millis(5000);
            a.on_timer(now);
        }
        assert!(blackholed > 0);
        assert!(a.peers.get(&2).expect("peer").backoff > 0, "backoff escalated");
        // Peer comes back: shuttle traffic until delivery completes.
        let (_, got_b, _) = shuttle(&mut a, &mut b, a_ep, b_ep, now, |_| false, 200);
        assert_eq!(got_b.len(), 1, "message survives the outage");
        let peer = a.peers.get(&2).expect("peer");
        assert_eq!(peer.consecutive_timeouts, 0, "timeouts reset by SACK");
        assert_eq!(peer.backoff, 0, "backoff reset by SACK");
        assert_eq!(a.peer_timeouts(2), 0);
    }

    #[test]
    fn rto_stays_clamped_through_repeated_escalation() {
        let cfg = SrudpConfig::default();
        let mut a = Srudp::new(1, cfg.clone());
        a.set_peer_endpoint(2, ep(1, 5));
        let mut now = SimTime::ZERO;
        a.send_message(now, 2, Bytes::from(vec![9u8; 100])).unwrap();
        let _ = a.drain();
        // 40 unanswered timer rounds: rto doubles each round but must
        // never leave [rto_min, rto_max].
        for _ in 0..40 {
            now = now + SimDuration::from_millis(5000);
            a.on_timer(now);
            let _ = a.drain();
            let rto = a.peers.get(&2).expect("peer").rto;
            assert!(rto >= cfg.rto_min, "rto {rto} below floor");
            assert!(rto <= cfg.rto_max, "rto {rto} above ceiling");
        }
        assert_eq!(
            a.peers.get(&2).expect("peer").rto,
            cfg.rto_max,
            "escalation saturates at rto_max"
        );
    }
}

#[cfg(test)]
mod migration_tests {
    use super::tests::shuttle;
    use super::*;
    use snipe_util::id::HostId;

    fn ep(h: u32, p: u16) -> Endpoint {
        Endpoint::new(HostId(h), p)
    }

    /// Full migration drill: receiver checkpointed mid-message and
    /// resurrected elsewhere; nothing is lost, FIFO holds.
    #[test]
    fn export_import_preserves_in_flight_traffic() {
        let mut cfg = SrudpConfig::default();
        cfg.rto_initial = SimDuration::from_millis(5);
        let mut a = Srudp::new(1, cfg.clone());
        let mut b = Srudp::new(2, cfg.clone());
        a.set_peer_endpoint(2, ep(1, 5));
        // Queue three multi-fragment messages.
        for i in 0..3u8 {
            a.send_message(SimTime::ZERO, 2, Bytes::from(vec![i; 4000])).unwrap();
        }
        // Deliver only the first few packets to b, drop the rest.
        let mut delivered_packets = 0;
        for o in a.drain() {
            if let Out::Send { bytes, .. } = o {
                if delivered_packets < 2 {
                    b.on_packet(SimTime::ZERO, ep(0, 5), bytes).unwrap();
                    delivered_packets += 1;
                }
            }
        }
        b.drain();
        // "Migrate" BOTH endpoints: checkpoint and restore.
        let a2_state = a.export_state();
        let b2_state = b.export_state();
        let mut a2 = Srudp::import_state(a2_state, cfg.clone(), SimTime::ZERO).unwrap();
        let mut b2 = Srudp::import_state(b2_state, cfg.clone(), SimTime::ZERO).unwrap();
        // b now lives at a new endpoint; a2 learns it.
        a2.set_peer_endpoint(2, ep(9, 5));
        let now = SimTime::ZERO + SimDuration::from_millis(10);
        a2.retransmit_all(now);
        // Shuttle to completion.
        let mut got = Vec::new();
        let mut t = now;
        for _ in 0..500 {
            let mut moved = false;
            for o in a2.drain() {
                if let Out::Send { bytes, .. } = o {
                    moved = true;
                    b2.on_packet(t, ep(0, 5), bytes).unwrap();
                }
            }
            for o in b2.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        moved = true;
                        a2.on_packet(t, ep(9, 5), bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            if !moved {
                t = t + SimDuration::from_millis(10);
                a2.on_timer(t);
                b2.on_timer(t);
            }
        }
        assert_eq!(got.len(), 3, "all messages must survive migration");
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m[0] as usize, i, "FIFO order preserved");
            assert_eq!(m.len(), 4000);
        }
        assert!(a2.quiescent());
    }

    #[test]
    fn export_of_fresh_endpoint_is_importable() {
        let a = Srudp::new(7, SrudpConfig::default());
        let b =
            Srudp::import_state(a.export_state(), SrudpConfig::default(), SimTime::ZERO).unwrap();
        assert_eq!(b.key(), 7);
        assert!(b.quiescent());
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(Srudp::import_state(
            Bytes::from_static(b"junk"),
            SrudpConfig::default(),
            SimTime::ZERO
        )
        .is_err());
    }

    #[test]
    fn hostile_frag_count_rejected_without_allocating() {
        let mut b = Srudp::new(2, SrudpConfig::default());
        // Handcraft a DATA header claiming u32::MAX fragments; accepting
        // it would size a multi-gigabyte reassembly buffer.
        let mut e = Encoder::new();
        e.put_u8(KIND_DATA);
        e.put_u64(1); // src key
        e.put_u64(0); // msg id
        e.put_u32(0); // frag idx
        e.put_u32(u32::MAX); // frag count
        e.put_bytes(b"x");
        let err = b.on_packet(SimTime::ZERO, ep(0, 5), e.finish()).unwrap_err();
        assert_eq!(err.kind(), "protocol");
        // Zero is equally corrupt (every message has ≥ 1 fragment).
        let mut e = Encoder::new();
        e.put_u8(KIND_DATA);
        e.put_u64(1);
        e.put_u64(0);
        e.put_u32(0);
        e.put_u32(0);
        e.put_bytes(b"x");
        assert!(b.on_packet(SimTime::ZERO, ep(0, 5), e.finish()).is_err());
    }

    #[test]
    fn import_rejects_hostile_counts() {
        // A checkpoint claiming a huge fragment vector but carrying no
        // bytes must error out, not preallocate.
        let mut e = Encoder::new();
        e.put_u64(7); // my key
        e.put_u32(1); // one peer
        e.put_u64(3); // peer key
        e.put_bool(false); // no location
        e.put_u64(0); // next_msg_id
        e.put_u32(1); // one queued message
        e.put_u64(0); // msg id
        e.put_u32(u32::MAX); // n_frags: hostile
        let err = match Srudp::import_state(e.finish(), SrudpConfig::default(), SimTime::ZERO) {
            Ok(_) => panic!("hostile checkpoint accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), "codec");
    }

    fn fec_cfg() -> SrudpConfig {
        let mut cfg = SrudpConfig::default();
        cfg.frag_strategy = FragStrategy::Fec;
        cfg
    }

    fn patterned(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 249) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn fec_round_trips_multi_fragment_messages() {
        let mut a = Srudp::new(1, fec_cfg());
        let mut b = Srudp::new(2, fec_cfg());
        a.set_peer_endpoint(2, ep(1, 5));
        let payload = patterned(5 * 1400);
        a.send_message(SimTime::ZERO, 2, payload.clone()).unwrap();
        let (_, got_b, _) =
            shuttle(&mut a, &mut b, ep(0, 5), ep(1, 5), SimTime::ZERO, |_| false, 200);
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0], payload);
        assert_eq!(b.stats().fec_delivered, 1);
        assert_eq!(b.stats().fec_corrupt, 0);
        assert!(a.quiescent(), "done-SACK must clear the sender");
    }

    #[test]
    fn fec_completes_in_one_flight_despite_share_loss() {
        // b = 5 data shares + 4 parity = 9 on the wire; any 5 suffice.
        // Drop 4 of the 9 first-flight shares: the message must still
        // deliver with no RTO round (the whole point of FEC).
        let mut a = Srudp::new(1, fec_cfg());
        let mut b = Srudp::new(2, fec_cfg());
        a.set_peer_endpoint(2, ep(1, 5));
        let payload = patterned(5 * 1400);
        a.send_message(SimTime::ZERO, 2, payload.clone()).unwrap();
        let mut got = Vec::new();
        for (i, o) in a.drain().into_iter().enumerate() {
            if let Out::Send { bytes, .. } = o {
                if [1usize, 3, 5, 7].contains(&i) {
                    continue; // lost shares
                }
                b.on_packet(SimTime::ZERO, ep(0, 5), bytes).unwrap();
            }
        }
        for o in b.drain() {
            if let Out::Deliver { msg, .. } = o {
                got.push(msg);
            }
        }
        assert_eq!(got.len(), 1, "quorum of b shares must reconstruct immediately");
        assert_eq!(got[0], payload);
        assert_eq!(b.stats().fec_delivered, 1);
    }

    #[test]
    fn fec_plain_interop_is_per_driver_config() {
        // A plain-strategy sender talking to an FEC-capable receiver
        // (and vice versa) must still deliver: strategy only changes
        // what the sender emits, the receiver handles both kinds.
        let mut a = Srudp::new(1, SrudpConfig::default());
        let mut b = Srudp::new(2, fec_cfg());
        a.set_peer_endpoint(2, ep(1, 5));
        let payload = patterned(4 * 1400);
        a.send_message(SimTime::ZERO, 2, payload.clone()).unwrap();
        let (_, got_b, _) =
            shuttle(&mut a, &mut b, ep(0, 5), ep(1, 5), SimTime::ZERO, |_| false, 200);
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0], payload);
        assert_eq!(b.stats().fec_delivered, 0, "plain path must not count as FEC");
    }

    #[test]
    fn fec_corrupted_share_is_caught_never_misdelivered() {
        let mut a = Srudp::new(1, fec_cfg());
        let mut b = Srudp::new(2, fec_cfg());
        a.set_peer_endpoint(2, ep(1, 5));
        let payload = patterned(5 * 1400);
        a.send_message(SimTime::ZERO, 2, payload.clone()).unwrap();
        let mut now = SimTime::ZERO;
        let mut got = Vec::new();
        let mut corrupted = false;
        for _ in 0..400 {
            let mut moved = false;
            for o in a.drain() {
                if let Out::Send { bytes, .. } = o {
                    moved = true;
                    let wire = if !corrupted {
                        corrupted = true;
                        // Flip a byte deep in the first share's payload
                        // (headers intact, so only FEC can notice).
                        let mut v = bytes.to_vec();
                        let at = v.len() - 3;
                        v[at] ^= 0xFF;
                        Bytes::from(v)
                    } else {
                        bytes
                    };
                    // The corrupted quorum decode is a counted error.
                    let _ = b.on_packet(now, ep(0, 5), wire);
                }
            }
            for o in b.drain() {
                match o {
                    Out::Send { bytes, .. } => {
                        moved = true;
                        a.on_packet(now, ep(1, 5), bytes).unwrap();
                    }
                    Out::Deliver { msg, .. } => got.push(msg),
                    Out::Wake { .. } => {}
                }
            }
            if got.len() == 1 {
                break;
            }
            if !moved {
                now = now + SimDuration::from_millis(120);
                a.on_timer(now);
                b.on_timer(now);
            }
        }
        assert!(corrupted);
        assert_eq!(b.stats().fec_corrupt, 1, "corruption must be detected exactly once");
        assert_eq!(got.len(), 1, "retransmissions must recover the message");
        assert_eq!(got[0], payload, "a corrupted reconstruction must never reach the app");
    }

    #[test]
    fn fec_meta_mismatch_is_a_protocol_error() {
        let mut b = Srudp::new(2, SrudpConfig::default());
        let share = |checksum: u32| {
            let mut e = Encoder::new();
            e.put_u8(KIND_FEC);
            e.put_u64(1); // src key
            e.put_u64(0); // msg id
            e.put_u32(0); // share idx
            e.put_u8(3); // b
            e.put_u32(100); // msg_len
            e.put_u32(checksum);
            e.put_bytes(b"abc");
            e.finish()
        };
        b.on_packet(SimTime::ZERO, ep(0, 5), share(7)).unwrap();
        // Same message, contradictory metadata: hostile or corrupted.
        let err = b.on_packet(SimTime::ZERO, ep(0, 5), share(8)).unwrap_err();
        assert_eq!(err.kind(), "protocol");
    }

    #[test]
    fn partial_reassembly_state_is_bounded() {
        // A sender that opens partials forever (fragment 0 of 2, new
        // msg id each time) must not grow receiver state without bound.
        let mut b = Srudp::new(2, SrudpConfig::default());
        let total = 3 * crate::frag::MAX_PARTIAL_MSGS as u64;
        for id in 0..total {
            let mut e = Encoder::new();
            e.put_u8(KIND_DATA);
            e.put_u64(1);
            e.put_u64(id);
            e.put_u32(0);
            e.put_u32(2);
            e.put_bytes(b"never completes");
            b.on_packet(SimTime::from_nanos(id), ep(0, 5), e.finish()).unwrap();
        }
        let peer = &b.peers[&1];
        assert!(peer.reasm.in_progress() <= crate::frag::MAX_PARTIAL_MSGS);
        assert_eq!(peer.counts.len(), peer.reasm.in_progress(), "side tables stay in lockstep");
        assert_eq!(b.stats().reasm_evicted, 2 * crate::frag::MAX_PARTIAL_MSGS as u64);
    }

    #[test]
    fn stale_partials_are_swept_by_virtual_time() {
        let mut b = Srudp::new(2, SrudpConfig::default());
        let mut e = Encoder::new();
        e.put_u8(KIND_DATA);
        e.put_u64(1);
        e.put_u64(0);
        e.put_u32(0);
        e.put_u32(2);
        e.put_bytes(b"half");
        b.on_packet(SimTime::ZERO, ep(0, 5), e.finish()).unwrap();
        b.drain();
        assert_eq!(b.peers[&1].reasm.in_progress(), 1);
        assert!(b.next_deadline().is_some(), "evict sweep must be armed");
        // Walk time past the TTL in sweep-sized steps.
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            now = now + REASM_TTL;
            b.on_timer(now);
        }
        assert_eq!(b.peers[&1].reasm.in_progress(), 0);
        assert_eq!(b.stats().reasm_evicted, 1);
        assert!(b.peers[&1].counts.is_empty());
        assert!(b.peers[&1].fec_meta.is_empty());
    }
}
