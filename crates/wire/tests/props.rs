//! Property tests for the path scorer and the stack snapshot format.
//!
//! The contracts under test are the refactor's load-bearing promises:
//! timeout-driven rotation always settles on a surviving route (no
//! matter where it sits in the ranking or how good the dead routes
//! once looked), a gray link that heals earns selection back instead
//! of being blacklisted forever, and the per-driver tagged snapshot
//! round-trips transport state — SRUDP queues and locations, multicast
//! dedup — through `export_state`/`import_state`.

use bytes::Bytes;
use proptest::{prop_assert, prop_assert_eq, proptest};
use snipe_netsim::topology::Endpoint;
use snipe_util::id::{HostId, NetId};
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{seal, Proto};
use snipe_wire::mcast::McastMsg;
use snipe_wire::path::{
    PeerPaths, PENALTY_PER_FAILOVER, RTT_SAMPLE_MAX, RTT_SAMPLE_MIN, UNMEASURED_RTT_SCORE,
};
use snipe_wire::rstream::RstreamConfig;
use snipe_wire::stack::{StackConfig, WireStack};
use snipe_wire::Out;

/// Drive escalating consecutive-timeout reports until the scorer
/// rotates off `dead` (bounded; panics on non-termination via the
/// assert in the caller). Returns how many reports it took.
fn kill_route(p: &mut PeerPaths, dead: NetId) -> u32 {
    let mut consecutive = 0;
    while p.current() == Some(dead) && consecutive < 64 {
        consecutive += 1;
        p.report_timeouts(consecutive);
    }
    consecutive
}

proptest! {
    /// However many routes exist, wherever the survivor ranks, and
    /// however fast the dead routes once measured, escalating timeouts
    /// rotate route-by-route until the survivor carries traffic — and
    /// once it does, polling with zero timeouts never rotates away.
    #[test]
    fn failover_converges_to_the_surviving_route(
        n in 2usize..6,
        survivor_off in 0usize..5,
        dead_rtt_ms in 1u64..80,
    ) {
        let nets: Vec<NetId> = (0..n as u32).map(NetId).collect();
        let survivor = nets[survivor_off % n];
        let mut p = PeerPaths::new(nets);
        // The first route measures excellently before it dies: a good
        // history must not keep a dead route selected.
        p.record_rtt(SimDuration::from_millis(dead_rtt_ms));
        let mut rounds = 0;
        while p.current() != Some(survivor) {
            prop_assert!(rounds < 64, "never settled on survivor: {p:?}");
            let dead = p.current().unwrap();
            kill_route(&mut p, dead);
            rounds += 1;
        }
        // Traffic flows on the survivor; the stack keeps polling.
        p.report_timeouts(0);
        for _ in 0..32 {
            p.record_rtt(SimDuration::from_millis(dead_rtt_ms));
            p.record_progress();
            prop_assert!(!p.report_timeouts(0));
            prop_assert_eq!(p.current(), Some(survivor));
            prop_assert_eq!(p.select(), Some(survivor));
        }
    }

    /// A fast route that goes gray accumulates failover penalty and
    /// loses selection; once rotation retries it and it carries
    /// traffic again, forward progress decays the penalty to exactly
    /// zero and its measured RTT wins selection back.
    #[test]
    fn scores_recover_after_a_gray_link_heals(
        fast_ms in 1u64..40,
        slow_ms in 50u64..90,
        gray_cycles in 1u32..4,
    ) {
        let a = NetId(0);
        let b = NetId(1);
        let mut p = PeerPaths::new(vec![a, b]);
        p.record_rtt(SimDuration::from_millis(fast_ms));
        for _ in 0..gray_cycles {
            // A goes gray: timeouts rotate to B, penalising A. While
            // the penalty is fresh, B wins selection outright.
            kill_route(&mut p, a);
            prop_assert_eq!(p.current(), Some(b));
            prop_assert_eq!(p.select(), Some(b));
            // B carries traffic for a while (at its slower RTT)...
            p.report_timeouts(0);
            p.record_rtt(SimDuration::from_millis(slow_ms));
            p.record_progress();
            // ...then fails in turn, sending rotation back to A.
            kill_route(&mut p, b);
            prop_assert_eq!(p.current(), Some(a));
            p.report_timeouts(0);
        }
        let grayed = p.score(a).unwrap();
        prop_assert!(grayed >= PENALTY_PER_FAILOVER, "no penalty recorded: {grayed}");
        // The link heals: A carries traffic and is forgiven. The
        // penalty floor snaps the decay to exactly zero, so the score
        // converges to the measured RTT alone, below B's.
        for _ in 0..600 {
            p.record_rtt(SimDuration::from_millis(fast_ms));
            p.record_progress();
        }
        let healed = p.score(a).unwrap();
        prop_assert!((healed - fast_ms as f64 / 1e3).abs() < 1e-9, "penalty residue: {healed}");
        prop_assert!(p.score(a).unwrap() < p.score(b).unwrap());
        prop_assert_eq!(p.select(), Some(a));
    }

    /// Cross-driver snapshot round-trip: a stack running all three
    /// drivers exports per-driver tagged sections; importing restores
    /// SRUDP peers, locations and backlog, kicks retransmission of
    /// everything unacked, and preserves multicast dedup state. A
    /// slimmer configuration imports the same snapshot by dropping the
    /// sections it does not register.
    #[test]
    fn cross_driver_snapshot_round_trips(
        peer_rows in proptest::collection::vec(
            (2u64..200, 1u32..50, proptest::collection::vec(proptest::any::<u8>(), 1..60)),
            1..4,
        ),
        mcasts in proptest::collection::vec((0u64..3, 5u64..9, 0u64..6), 1..8),
    ) {
        // Dedup generated rows by key (the shim has no map strategy).
        let peers: std::collections::BTreeMap<u64, (u32, Vec<u8>)> = peer_rows
            .into_iter()
            .map(|(key, host, payload)| (key, (host, payload)))
            .collect();
        let now = SimTime::ZERO;
        let cfg = StackConfig {
            rstream: Some(RstreamConfig::default()),
            mcast_member: true,
            ..StackConfig::default()
        };
        let mut stack = WireStack::new(1, cfg.clone());
        for (&key, &(host, ref payload)) in &peers {
            stack.set_peer(key, Endpoint::new(HostId(host), 40), Vec::new());
            stack.send(now, key, Bytes::from(payload.clone())).unwrap();
        }
        let relay = Endpoint::new(HostId(99), 7);
        let data = |(group, origin, seq): (u64, u64, u64)| {
            McastMsg::Data { group, origin, seq, ttl: 2, payload: Bytes::from_static(b"x") }
                .encode()
        };
        for &m in &mcasts {
            let r = stack.on_datagram(now, relay, seal(Proto::Mcast, data(m))).unwrap();
            prop_assert_eq!(r, None, "registered member must consume MCAST");
        }
        let _ = stack.drain();

        let snap = stack.export_state();
        let mut imported = WireStack::import_state(snap.clone(), cfg, now).unwrap();
        prop_assert_eq!(imported.key(), stack.key());
        prop_assert_eq!(imported.known_peers(), stack.known_peers());
        prop_assert_eq!(imported.backlog_total(), stack.backlog_total());
        prop_assert!(imported.backlog_total() > 0, "every peer has a queued message");
        for &key in peers.keys() {
            prop_assert_eq!(imported.peer_endpoint(key), stack.peer_endpoint(key));
        }
        // Import kicks retransmission: the unacked queue goes back out.
        let outs = imported.drain();
        prop_assert!(
            outs.iter().any(|o| matches!(o, Out::Send { .. })),
            "import must retransmit the unacked backlog"
        );
        // Multicast dedup state travelled: replaying every original
        // datagram delivers nothing, while a fresh sequence still does.
        for &m in &mcasts {
            imported.on_datagram(now, relay, seal(Proto::Mcast, data(m))).unwrap();
        }
        let dups = imported
            .drain()
            .iter()
            .filter(|o| matches!(o, Out::Deliver { proto: Proto::Mcast, .. }))
            .count();
        prop_assert_eq!(dups, 0, "imported member re-delivered a seen message");
        imported.on_datagram(now, relay, seal(Proto::Mcast, data((0, 5, 1_000)))).unwrap();
        let fresh = imported
            .drain()
            .iter()
            .filter(|o| matches!(o, Out::Deliver { proto: Proto::Mcast, .. }))
            .count();
        prop_assert_eq!(fresh, 1, "fresh multicast traffic must still deliver");
        // A snapshot from a three-driver stack loads into an
        // SRUDP-only configuration; unregistered sections are dropped.
        let slim = WireStack::import_state(snap, StackConfig::default(), now).unwrap();
        prop_assert_eq!(slim.known_peers(), stack.known_peers());
    }
}

// ---------------------------------------------------------------------
// Pinned regressions: PathSelector edge cases reachable from corrupted
// transport input (hostile RTT echoes) or degenerate RC metadata (a
// single advertised route). Each of these failed before the fix.
// ---------------------------------------------------------------------

/// A zero RTT sample (corrupted timestamp echo) must not seed the EWMA
/// at 0: a score of exactly 0.0 is unbeatable, so the poisoned route
/// would stay selected forever no matter how it fails later.
#[test]
fn zero_rtt_sample_cannot_seed_a_perfect_score() {
    let a = NetId(0);
    let b = NetId(1);
    let mut p = PeerPaths::new(vec![a, b]);
    p.record_rtt(SimDuration::ZERO);
    let s = p.score(a).unwrap();
    assert!(
        s >= RTT_SAMPLE_MIN.as_nanos() as f64 / 1e9,
        "zero sample must clamp to RTT_SAMPLE_MIN, got score {s}"
    );
    // The clamped route is still beatable: after a failover penalty it
    // loses selection to the untried alternative.
    p.rotate();
    assert_eq!(p.select(), Some(b), "poisoned route must not be unbeatable");
}

/// A huge RTT sample (corrupted echo claiming ~11.5 days) must clamp:
/// unclamped it poisons the EWMA so badly that no realistic number of
/// genuine samples wins the route back.
#[test]
fn huge_rtt_sample_is_clamped() {
    let a = NetId(0);
    let mut p = PeerPaths::new(vec![a]);
    p.record_rtt(SimDuration::from_millis(1_000_000_000));
    let cap = RTT_SAMPLE_MAX.as_nanos() as f64 / 1e9;
    let s = p.score(a).unwrap();
    assert!(s <= cap + 1e-9, "huge sample must clamp to RTT_SAMPLE_MAX, got {s}");
    // Genuine traffic recovers the score in a handful of samples, not
    // thousands: 64 samples at 5ms must pull the EWMA under 100ms.
    for _ in 0..64 {
        p.record_rtt(SimDuration::from_millis(5));
    }
    assert!(p.score(a).unwrap() < 0.100, "EWMA must recover: {:?}", p.score(a));
}

/// With exactly one candidate, rotation has nothing to rotate to: it
/// must be a strict no-op, not a self-swap that penalises the only
/// usable route and counts a phantom failover.
#[test]
fn single_candidate_rotation_is_a_no_op() {
    let a = NetId(0);
    let mut p = PeerPaths::new(vec![a]);
    assert_eq!(p.rotate(), Some(a), "the only route stays current");
    assert_eq!(p.failovers, 0, "no failover may be counted");
    assert!(
        (p.score(a).unwrap() - UNMEASURED_RTT_SCORE).abs() < 1e-12,
        "no penalty may accrue: {:?}",
        p.score(a)
    );
    // The un-poisoned score means a later RC refresh adding a second
    // (untried) route does not instantly steal traffic from a healthy
    // single route that had weathered a few such calls.
    for _ in 0..5 {
        p.rotate();
    }
    p.update(vec![a, NetId(1)]);
    assert_eq!(p.select(), Some(a), "healthy route keeps selection after refresh");
}

/// Scores must stay finite (and selection functional) under a hostile
/// history: extreme samples, thousands of rotations, decay cycles.
/// NaN is the killer — it compares false against everything, so one
/// non-finite score would wedge selection permanently.
#[test]
fn scores_stay_finite_under_hostile_history() {
    let a = NetId(0);
    let b = NetId(1);
    let mut p = PeerPaths::new(vec![a, b]);
    p.record_rtt(SimDuration::from_nanos(u64::MAX));
    for _ in 0..10_000 {
        p.rotate();
    }
    for _ in 0..10_000 {
        p.record_progress();
    }
    p.record_rtt(SimDuration::ZERO);
    for net in [a, b] {
        let s = p.score(net).unwrap();
        assert!(s.is_finite(), "score({net:?}) went non-finite: {s}");
    }
    assert!(p.select().is_some(), "selection must survive hostile history");
    assert!(!p.report_timeouts(0), "a zero-timeout poll never rotates");
}
