//! Property tests for the GF(2^8) Reed-Solomon share codec.
//!
//! The contracts under test are the erasure code's load-bearing
//! promises: any `b` of the `2b-1` shares reconstruct the message
//! exactly (whichever `b-1` shares the network loses), and a
//! corrupted share can *change* the reconstruction but never slip a
//! wrong message past the checksum — the delivery gate is
//! reconstruct-then-verify, so "wrong bytes delivered" is impossible,
//! only "retry".

use bytes::Bytes;
use proptest::{prop_assert, prop_assert_eq, proptest};
use snipe_util::rng::Xoshiro256;
use snipe_wire::fec::{decode, encode, msg_checksum, share_len, MAX_B};

/// Deterministically pick `keep` distinct share indices out of `total`.
fn choose(total: usize, keep: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..total).collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    rng.shuffle(&mut idx);
    idx.truncate(keep);
    idx
}

proptest! {
    /// encode → lose any b-1 shares → decode round-trips, whatever the
    /// message length, block count, or loss pattern.
    #[test]
    fn any_b_of_2b_minus_1_shares_round_trip(
        len in 1usize..6000,
        b in 2usize..24,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xF3C);
        let msg: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let shares = encode(&msg, b).unwrap();
        prop_assert_eq!(shares.len(), 2 * b - 1);
        for s in &shares {
            prop_assert_eq!(s.len(), share_len(len, b));
        }
        let survivors: Vec<(u32, Bytes)> = choose(2 * b - 1, b, seed)
            .into_iter()
            .map(|i| (i as u32, shares[i].clone()))
            .collect();
        let back = decode(b, len, &survivors).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Fewer than b distinct shares must never reconstruct.
    #[test]
    fn below_quorum_always_errors(
        len in 1usize..2000,
        b in 2usize..16,
        seed in 0u64..u64::MAX,
    ) {
        let msg = vec![0xA5u8; len];
        let shares = encode(&msg, b).unwrap();
        let survivors: Vec<(u32, Bytes)> = choose(2 * b - 1, b - 1, seed)
            .into_iter()
            .map(|i| (i as u32, shares[i].clone()))
            .collect();
        prop_assert!(decode(b, len, &survivors).is_err());
    }

    /// Corrupt one surviving share: decode either errors outright or
    /// produces bytes the message checksum rejects. It must never
    /// yield the right checksum with wrong bytes — that is the gate
    /// SRUDP applies before delivering.
    #[test]
    fn corruption_never_beats_the_checksum(
        len in 16usize..3000,
        b in 2usize..16,
        seed in 0u64..u64::MAX,
        victim in 0usize..16,
        flip in 1u8..255,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xBAD);
        let msg: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let sum = msg_checksum(&msg);
        let shares = encode(&msg, b).unwrap();
        let mut survivors: Vec<(u32, Bytes)> = choose(2 * b - 1, b, seed)
            .into_iter()
            .map(|i| (i as u32, shares[i].clone()))
            .collect();
        let v = victim % b;
        let mut bad = survivors[v].1.to_vec();
        let at = seed as usize % bad.len();
        bad[at] ^= flip;
        survivors[v].1 = Bytes::from(bad);
        match decode(b, len, &survivors) {
            Err(_) => {}
            Ok(got) => {
                prop_assert!(
                    msg_checksum(&got) != sum || got == msg,
                    "wrong reconstruction with a matching checksum"
                );
                // A single flipped byte inside the quorum always
                // perturbs the output (the code is MDS: each chunk
                // depends on every quorum share or is copied verbatim).
                prop_assert!(got != msg || flip == 0);
            }
        }
    }

    /// Hostile share structure — mismatched lengths, out-of-range
    /// indices, duplicate indices, absurd msg_len — errors, never
    /// panics, never fabricates a message.
    #[test]
    fn hostile_share_structure_is_rejected(
        b in 2usize..16,
        len in 1usize..512,
        junk_len in 0usize..64,
        idx in 0u32..64,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let junk: Vec<(u32, Bytes)> = (0..b)
            .map(|i| {
                let l = (junk_len + i * (seed as usize % 3)) % 64;
                let bytes: Vec<u8> = (0..l).map(|_| rng.next_u64() as u8).collect();
                (idx.wrapping_add((i as u32).wrapping_mul(seed as u32 | 1)), Bytes::from(bytes))
            })
            .collect();
        // Whatever happens, it must not panic; errors are fine.
        let _ = decode(b, len, &junk);
        let _ = decode(b, len * MAX_B, &junk);
        let _ = decode(MAX_B + 1, len, &junk);
        let _ = decode(0, len, &junk);
    }
}
