//! Corrupt-frame corpus: hostile bytes against the full wire stack.
//!
//! Every datagram here is something a broken router, a chaos fault or
//! an attacker could put on the wire. The contract under test: the
//! stack never panics, never delivers garbage, and *counts* every
//! rejection in its decode-drop counters — hostile input is expected
//! input.

use bytes::Bytes;
use snipe_netsim::topology::Endpoint;
use snipe_util::codec::Encoder;
use snipe_util::id::HostId;
use snipe_util::time::SimTime;
use snipe_wire::frame::{seal, Proto, ENVELOPE_OVERHEAD};
use snipe_wire::rstream::RstreamConfig;
use snipe_wire::stack::{StackConfig, WireStack};

fn ep(h: u32, p: u16) -> Endpoint {
    Endpoint::new(HostId(h), p)
}

/// A stack with every driver registered, so hostile bodies reach all
/// three protocol decoders, not just SRUDP.
fn full_stack(key: u64) -> WireStack {
    let cfg = StackConfig {
        rstream: Some(RstreamConfig::default()),
        mcast_member: true,
        ..StackConfig::default()
    };
    WireStack::new(key, cfg)
}

/// Tiny deterministic generator (splitmix64) so the garbage corpus is
/// identical on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn bytes(&mut self, len: usize) -> Bytes {
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            v.extend_from_slice(&self.next().to_le_bytes());
        }
        v.truncate(len);
        Bytes::from(v)
    }
}

/// A representative valid datagram: the first SRUDP DATA frame a stack
/// emits for a small message.
fn valid_srudp_frame() -> Bytes {
    let mut a = WireStack::new(1, StackConfig::default());
    a.set_peer(2, ep(1, 5), vec![]);
    a.send(SimTime::ZERO, 2, Bytes::from_static(b"corpus seed message")).unwrap();
    for o in a.drain() {
        if let snipe_wire::Out::Send { bytes, .. } = o {
            return bytes;
        }
    }
    panic!("stack emitted no datagram");
}

#[test]
fn truncated_datagrams_are_counted_drops() {
    let mut b = full_stack(2);
    let valid = valid_srudp_frame();
    let mut fed = 0u64;
    // Every strict prefix shorter than the envelope...
    for len in 0..ENVELOPE_OVERHEAD {
        assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), valid.slice(0..len)).is_err());
        fed += 1;
    }
    assert_eq!(b.decode_drops(), fed);
    assert_eq!(
        b.metrics().counter_by_name("wire.decode.truncated"),
        Some(ENVELOPE_OVERHEAD as u64)
    );
    // ...and longer prefixes, which pass the length guard but lose
    // their checksum trailer.
    for len in ENVELOPE_OVERHEAD..valid.len() {
        assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), valid.slice(0..len)).is_err());
        fed += 1;
    }
    assert_eq!(b.decode_drops(), fed);
}

#[test]
fn every_bit_flip_of_a_valid_frame_is_a_counted_drop() {
    let mut b = full_stack(2);
    let valid = valid_srudp_frame();
    // Sanity: the pristine frame is consumed without error.
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), valid.clone()).is_ok());
    assert_eq!(b.decode_drops(), 0);
    let mut flips = 0u64;
    for i in 0..valid.len() {
        for bit in 0..8 {
            let mut hostile = valid.to_vec();
            hostile[i] ^= 1 << bit;
            let r = b.on_datagram(SimTime::ZERO, ep(0, 5), Bytes::from(hostile));
            assert!(r.is_err(), "flip of byte {i} bit {bit} was accepted");
            flips += 1;
        }
    }
    assert_eq!(b.decode_drops(), flips, "every flipped frame must be counted");
    // A single flip can break the checksum or (on the tag byte) the
    // checksum as well — either way nothing should classify as a valid
    // envelope with a bad body.
    assert_eq!(b.metrics().counter_by_name("wire.decode.body"), Some(0));
}

#[test]
fn random_garbage_never_panics() {
    let mut b = full_stack(2);
    let mut rng = Rng(0xc0ffee);
    let mut fed = 0u64;
    for i in 0..2_000 {
        let len = (i % 97) as usize; // 0..96 bytes, cycling
        let r = b.on_datagram(SimTime::ZERO, ep(0, 5), rng.bytes(len));
        if r.is_err() {
            fed += 1;
        }
    }
    // A 32-bit checksum makes an accidental pass a ~1-in-4-billion
    // event; 2000 tries must all be rejected and all be counted.
    assert_eq!(fed, 2_000);
    assert_eq!(b.decode_drops(), 2_000);
}

#[test]
fn valid_envelope_with_garbage_body_is_a_counted_driver_drop() {
    let mut b = full_stack(2);
    let mut rng = Rng(0xbadf00d);
    let mut expected_body = 0u64;
    for proto in [Proto::Srudp, Proto::Rstream, Proto::Mcast] {
        for len in [1usize, 9, 33] {
            let dg = seal(proto, rng.bytes(len));
            assert!(
                b.on_datagram(SimTime::ZERO, ep(0, 5), dg).is_err(),
                "garbage {proto:?} body of {len} bytes was accepted"
            );
            expected_body += 1;
        }
        // Empty bodies lack even a kind byte.
        assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), seal(proto, Bytes::new())).is_err());
        expected_body += 1;
    }
    assert_eq!(b.metrics().counter_by_name("wire.decode.body"), Some(expected_body));
    assert_eq!(b.decode_drops(), expected_body);
    // Raw frames have no driver; garbage raw bodies surface unharmed.
    let inc = b.on_datagram(SimTime::ZERO, ep(0, 5), seal(Proto::Raw, rng.bytes(16))).unwrap();
    assert!(inc.is_some());
}

#[test]
fn forged_giant_fragment_count_is_rejected_without_allocating() {
    // A single well-checksummed SRUDP DATA header claiming u32::MAX
    // fragments: before the reassembly bound this allocated gigabytes.
    let mut enc = Encoder::with_capacity(64);
    enc.put_u8(1); // KIND_DATA
    enc.put_u64(77); // src key
    enc.put_u64(0); // msg id
    enc.put_u32(0); // frag idx
    enc.put_u32(u32::MAX); // hostile frag count
    enc.put_bytes(b"x");
    let dg = seal(Proto::Srudp, enc.finish());
    let mut b = full_stack(2);
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), dg).is_err());
    assert_eq!(b.metrics().counter_by_name("wire.decode.body"), Some(1));
}

#[test]
fn forged_out_of_range_fragment_index_does_not_poison_state() {
    // Hostile index beyond the claimed count: must error, and must not
    // leave a reassembly buffer behind that blocks the real message.
    let make = |idx: u32, count: u32, payload: &[u8]| {
        let mut enc = Encoder::with_capacity(64);
        enc.put_u8(1); // KIND_DATA
        enc.put_u64(77);
        enc.put_u64(0); // first msg id: FIFO delivery starts here
        enc.put_u32(idx);
        enc.put_u32(count);
        enc.put_bytes(payload);
        seal(Proto::Srudp, enc.finish())
    };
    let mut b = full_stack(2);
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), make(9, 2, b"evil")).is_err());
    // The genuine two-fragment message still assembles and delivers.
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), make(0, 2, b"first ")).is_ok());
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), make(1, 2, b"second")).is_ok());
    let delivered: Vec<Bytes> = b
        .drain()
        .into_iter()
        .filter_map(|o| match o {
            snipe_wire::Out::Deliver { msg, .. } => Some(msg),
            _ => None,
        })
        .collect();
    assert_eq!(delivered.len(), 1);
    assert_eq!(&delivered[0][..], b"first second");
}

#[test]
fn oversized_datagrams_are_handled() {
    let mut b = full_stack(2);
    let mut rng = Rng(7);
    // 256 KiB of garbage: far beyond any MTU, still just a counted drop.
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), rng.bytes(256 * 1024)).is_err());
    // A huge but *valid* raw frame surfaces rather than being dropped:
    // size alone is not corruption (the netsim enforces MTU separately).
    let big = seal(Proto::Raw, rng.bytes(128 * 1024));
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), big).unwrap().is_some());
    assert_eq!(b.decode_drops(), 1);
}

/// A well-sealed KIND_FEC share with attacker-chosen header fields.
fn fec_share(idx: u32, b: u8, msg_len: u32, checksum: u32, payload: &[u8]) -> Bytes {
    let mut enc = Encoder::with_capacity(64 + payload.len());
    enc.put_u8(3); // KIND_FEC
    enc.put_u64(77); // src key
    enc.put_u64(0); // msg id
    enc.put_u32(idx);
    enc.put_u8(b);
    enc.put_u32(msg_len);
    enc.put_u32(checksum);
    enc.put_bytes(payload);
    seal(Proto::Srudp, enc.finish())
}

#[test]
fn hostile_fec_headers_are_counted_driver_drops() {
    let mut b = full_stack(2);
    let hostile = [
        fec_share(0, 0, 100, 9, b"x"),        // b = 0: no such code
        fec_share(0, 1, 100, 9, b"x"),        // b = 1: FEC never emits it
        fec_share(0, 200, 100, 9, b"x"),      // b > MAX_B
        fec_share(0, 3, 0, 9, b"x"),          // zero-length message
        fec_share(u32::MAX, 3, 100, 9, b"x"), // share index ≥ 2b-1
        fec_share(5, 3, 100, 9, b"x"),        // 5 ≥ 2*3-1
    ];
    let mut fed = 0u64;
    for dg in hostile {
        assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), dg).is_err());
        fed += 1;
        assert_eq!(b.metrics().counter_by_name("wire.decode.body"), Some(fed));
    }
    // No reassembly state was poisoned, nothing delivered.
    assert!(b.drain().iter().all(|o| !matches!(o, snipe_wire::Out::Deliver { .. })));
}

#[test]
fn contradictory_fec_metadata_is_rejected_and_contained() {
    let mut b = full_stack(2);
    // First share pins the message metadata...
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), fec_share(0, 3, 90, 7, b"abc")).is_ok());
    // ...a forged sibling with a different checksum contradicts it.
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), fec_share(1, 3, 90, 8, b"abc")).is_err());
    assert_eq!(b.metrics().counter_by_name("wire.decode.body"), Some(1));
    // A conflicting duplicate of an already-held share is equally hostile.
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), fec_share(0, 3, 90, 7, b"xyz")).is_err());
    assert_eq!(b.metrics().counter_by_name("wire.decode.body"), Some(2));
}

#[test]
fn forged_quorum_with_wrong_checksum_is_never_delivered() {
    // An attacker fabricates a full quorum of "shares" whose declared
    // checksum does not match what they reconstruct to: the stack must
    // reject at the reconstruct-then-verify gate, not deliver garbage.
    let mut b = full_stack(2);
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), fec_share(0, 2, 6, 0xDEAD, b"abc")).is_ok());
    let err = b.on_datagram(SimTime::ZERO, ep(0, 5), fec_share(1, 2, 6, 0xDEAD, b"def"));
    assert!(err.is_err(), "checksum-mismatched reconstruction must error");
    assert!(b.drain().iter().all(|o| !matches!(o, snipe_wire::Out::Deliver { .. })));
    // The poisoned partial is forgotten: the real sender's retry can
    // start clean rather than colliding with attacker state.
    assert!(b.on_datagram(SimTime::ZERO, ep(0, 5), fec_share(0, 2, 6, 0xDEAD, b"abc")).is_ok());
}
