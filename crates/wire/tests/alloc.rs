//! Allocation regression test for the stack's steady-state queries.
//!
//! The daemon's supervision sweep polls every process stack once per
//! tick: which peers exist, which of them are in RTO trouble (and so
//! need an RC location re-resolution), plus the timer sweep itself.
//! After warm-up (scratch vectors at capacity, transport state
//! populated) those per-tick calls must not touch the heap. A counting
//! global allocator makes any regression an immediate test failure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, new)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use bytes::Bytes;
use snipe_netsim::topology::Endpoint;
use snipe_util::id::HostId;
use snipe_util::time::SimTime;
use snipe_wire::stack::{StackConfig, WireStack};

const PEERS: u64 = 32;

#[test]
fn steady_state_peer_queries_do_not_allocate() {
    let now = SimTime::ZERO;
    let mut stack = WireStack::new(1, StackConfig::default());
    // Populate transport state: a located peer plus one queued message
    // each, so every peer has SRUDP protocol state and a path entry.
    for i in 0..PEERS {
        let key = 100 + i;
        stack.set_peer(key, Endpoint::new(HostId(i as u32 + 2), 40), Vec::new());
        stack.send(now, key, Bytes::from_static(b"supervision ping")).unwrap();
    }
    let _ = stack.drain();

    // Warm-up: grow both scratch vectors to steady-state capacity
    // (threshold 0 matches every peer, so the trouble scan appends the
    // full key set before filtering) and run one timer sweep so the
    // stack's internal key scratch reaches capacity too.
    let mut keys = Vec::new();
    let mut trouble = Vec::new();
    stack.known_peers_into(&mut keys);
    assert_eq!(keys.len(), PEERS as usize, "warm-up should see every peer");
    stack.peers_in_trouble_into(0, &mut trouble);
    assert_eq!(trouble.len(), PEERS as usize);
    stack.on_timer(now);
    let _ = stack.drain();

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        keys.clear();
        stack.known_peers_into(&mut keys);
        trouble.clear();
        stack.peers_in_trouble_into(1, &mut trouble);
        stack.on_timer(now);
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(keys.len(), PEERS as usize);
    assert!(trouble.is_empty(), "no peer has timed out");
    assert_eq!(allocated, 0, "steady-state peer queries allocated {allocated} times");
}
