//! # SNIPE — Scalable Networked Information Processing Environment
//!
//! Umbrella crate re-exporting the full SNIPE workspace: the metacomputing
//! system of Fagg, Moore & Dongarra (SC'97), reproduced in Rust on a
//! deterministic discrete-event substrate.
//!
//! Start with [`snipe_core::SnipeWorld`] (re-exported as [`core`]) and the
//! `examples/` directory.

pub use mpi_connect as mpiconnect;
pub use pvm_baseline as pvm;
pub use snipe_core as core;
pub use snipe_crypto as crypto;
pub use snipe_daemon as daemon;
pub use snipe_files as files;
pub use snipe_netsim as netsim;
pub use snipe_playground as playground;
pub use snipe_rcds as rcds;
pub use snipe_rm as rm;
pub use snipe_util as util;
pub use snipe_wire as wire;
