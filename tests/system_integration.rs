//! Whole-system integration on the UTK-style dual-homed testbed:
//! groups + files + migration + consoles + failures, all at once.

use bytes::Bytes;
use snipe::core::api::TicketResult;
use snipe::core::{GroupEvent, SnipeApi, SnipeProcess, SnipeWorldBuilder};
use snipe::util::time::SimDuration;
use std::sync::{Arc, Mutex};

type Log = Arc<Mutex<Vec<String>>>;

/// A "collector" node: joins the data group, accumulates readings,
/// periodically checkpoints its tally to the file servers, and migrates
/// once halfway through.
struct Collector {
    tally: u64,
    readings: u64,
    log: Log,
    migrated: bool,
}

impl SnipeProcess for Collector {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.join_group("data");
    }
    fn on_group_message(&mut self, api: &mut SnipeApi<'_, '_>, _g: &str, _o: u64, msg: Bytes) {
        self.readings += 1;
        self.tally += msg.len() as u64;
        if self.readings == 20 && !self.migrated {
            self.migrated = true;
            self.log.lock().unwrap().push("collector migrating".into());
            api.migrate_to("host3");
        }
        if self.readings == 60 {
            api.write_file("lifn:snipe:file:tally", format!("{}", self.tally).into_bytes());
        }
    }
    fn on_migrated(&mut self, api: &mut SnipeApi<'_, '_>) {
        self.log.lock().unwrap().push(format!(
            "collector resumed on {} with {} readings",
            api.my_hostname(),
            self.readings
        ));
    }
    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, _t: u64, result: TicketResult) {
        if let TicketResult::FileWritten(Ok(())) = result {
            self.log.lock().unwrap().push("tally checkpointed".into());
            api.exit();
        }
    }
    fn checkpoint(&mut self) -> Bytes {
        let mut b = self.tally.to_be_bytes().to_vec();
        b.extend_from_slice(&self.readings.to_be_bytes());
        b.extend_from_slice(&[self.migrated as u8]);
        Bytes::from(b)
    }
    fn restore(&mut self, state: Bytes) {
        let mut t = [0u8; 8];
        t.copy_from_slice(&state[..8]);
        self.tally = u64::from_be_bytes(t);
        t.copy_from_slice(&state[8..16]);
        self.readings = u64::from_be_bytes(t);
        self.migrated = state[16] == 1;
    }
}

/// A producer: publishes readings to the group on a timer.
struct Producer {
    remaining: u32,
}

impl SnipeProcess for Producer {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.join_group("data");
    }
    fn on_group_event(&mut self, api: &mut SnipeApi<'_, '_>, _g: &str, e: GroupEvent) {
        if e == GroupEvent::Joined {
            api.set_timer(SimDuration::from_millis(50), 1);
        }
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _t: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            api.send_group("data", vec![7u8; 100]);
            api.set_timer(SimDuration::from_millis(50), 1);
        }
    }
}

/// Reads the tally file back at the end.
struct Verifier {
    log: Log,
}

impl SnipeProcess for Verifier {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.read_file("lifn:snipe:file:tally");
    }
    fn on_ticket(&mut self, _api: &mut SnipeApi<'_, '_>, _t: u64, result: TicketResult) {
        if let TicketResult::FileRead(Ok(content)) = result {
            self.log
                .lock()
                .unwrap()
                .push(format!("tally file: {}", String::from_utf8_lossy(&content)));
        }
    }
}

#[test]
fn utk_testbed_end_to_end() {
    let mut w = SnipeWorldBuilder::utk_testbed(5, 314).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let l = log.clone();
    w.register_process("collector", move |_| {
        Box::new(Collector { tally: 0, readings: 0, log: l.clone(), migrated: false })
    });
    w.register_process("producer", |_| Box::new(Producer { remaining: 40 }));
    let l2 = log.clone();
    w.register_process("verifier", move |_| Box::new(Verifier { log: l2.clone() }));

    w.spawn_on("host1", "collector", Bytes::new()).unwrap();
    // Two producers on different hosts: 80 readings total (collector
    // needs 60, slack for the group-join window).
    w.spawn_on("host2", "producer", Bytes::new()).unwrap();
    w.spawn_on("host4", "producer", Bytes::new()).unwrap();
    w.run_for_secs(30);
    w.spawn_on("host2", "verifier", Bytes::new()).unwrap();
    w.run_for_secs(5);

    let got = log.lock().unwrap();
    assert!(got.iter().any(|m| m == "collector migrating"), "{got:?}");
    assert!(got.iter().any(|m| m.starts_with("collector resumed on host3 with")), "{got:?}");
    assert!(got.iter().any(|m| m == "tally checkpointed"), "{got:?}");
    let tally_line = got.iter().find(|m| m.starts_with("tally file: ")).expect("tally read back");
    // 60 readings of 100 bytes each.
    assert_eq!(tally_line, "tally file: 6000");
}

#[test]
fn same_seed_is_bit_identical_different_seed_is_not() {
    fn run(seed: u64) -> (u64, u64, String) {
        let mut w = SnipeWorldBuilder::lan(4, seed).build();
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let l = log.clone();
        w.register_process("collector", move |_| {
            Box::new(Collector { tally: 0, readings: 0, log: l.clone(), migrated: false })
        });
        w.register_process("producer", |_| Box::new(Producer { remaining: 30 }));
        w.spawn_on("host1", "collector", Bytes::new()).unwrap();
        w.spawn_on("host2", "producer", Bytes::new()).unwrap();
        // Random failure injection driven by the world seed.
        let h2 = w.sim_ref().topology().host_by_name("host2").unwrap();
        let at = snipe::util::time::SimTime::ZERO + SimDuration::from_secs(2);
        w.sim().schedule_fn(at, move |world| {
            if world.rng().gen_bool(0.5) {
                world.host_down(h2);
            }
        });
        w.run_for_secs(10);
        let stats = w.sim_ref().stats();
        (stats.events, stats.delivered, format!("{:?}", log.lock().unwrap()))
    }
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must replay identically");
    let c = run(43);
    assert_ne!(a.0, c.0, "different seed should diverge (event counts)");
}
