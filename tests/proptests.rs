//! Property-based tests on the core data structures and invariants,
//! spanning crates: the canonical codec, fragmentation, big integers,
//! the replicated store, SRUDP delivery and the playground VM.

use bytes::Bytes;
use proptest::prelude::*;

use snipe::crypto::bigint::BigUint;
use snipe::playground::vm::{NullHost, Quotas, StepOutcome, Vm};
use snipe::playground::{Instr, Program};
use snipe::rcds::assertion::Assertion;
use snipe::rcds::store::RcStore;
use snipe::rcds::uri::Uri;
use snipe::util::codec::{Decoder, Encoder};
use snipe::util::id::HostId;
use snipe::util::rng::Xoshiro256;
use snipe::util::time::{SimDuration, SimTime};
use snipe::wire::frag::{split, ReassemblySet};
use snipe::wire::srudp::{Srudp, SrudpConfig};
use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;

/// Timer-driven flooder for the route-cache A/B test: bursts to a peer
/// every millisecond and echoes whatever comes back.
struct Flood {
    peer: Endpoint,
    burst: usize,
}

impl Actor for Flood {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } => {
                for _ in 0..self.burst {
                    ctx.send(self.peer, Bytes::from_static(b"flood"));
                }
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
            Event::Packet { from, payload } if from.host != ctx.host() => {
                ctx.send(from, payload);
            }
            _ => {}
        }
    }
}

proptest! {
    #[test]
    fn codec_primitives_round_trip(a in any::<u64>(), b in any::<i64>(), c in any::<u16>(),
                                   s in "\\PC{0,64}", blob in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut e = Encoder::new();
        e.put_u64(a);
        e.put_i64(b);
        e.put_u16(c);
        e.put_str(&s);
        e.put_bytes(&blob);
        let mut d = Decoder::new(e.finish());
        prop_assert_eq!(d.get_u64().unwrap(), a);
        prop_assert_eq!(d.get_i64().unwrap(), b);
        prop_assert_eq!(d.get_u16().unwrap(), c);
        prop_assert_eq!(d.get_str().unwrap(), s);
        prop_assert_eq!(&d.get_bytes().unwrap()[..], &blob[..]);
        d.expect_end().unwrap();
    }

    #[test]
    fn codec_rejects_truncation(blob in proptest::collection::vec(any::<u8>(), 1..128),
                                cut in 0usize..127) {
        let mut e = Encoder::new();
        e.put_bytes(&blob);
        let full = e.finish();
        let cut = cut.min(full.len() - 1);
        let mut d = Decoder::new(full.slice(..cut));
        // Truncated input must error, never panic.
        let _ = d.get_bytes();
    }

    #[test]
    fn fragmentation_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..20_000),
                                 frag in 1usize..4000,
                                 seed in any::<u64>()) {
        let payload = Bytes::from(payload);
        let frags = split(&payload, frag).unwrap();
        // Reassemble in a shuffled order with duplicates sprinkled in.
        let mut order: Vec<usize> = (0..frags.len()).collect();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        rng.shuffle(&mut order);
        let mut set = ReassemblySet::new();
        let mut result = None;
        for &i in &order {
            if let Some(m) = set.insert(SimTime::ZERO, 1, i, frags.len(), frags[i].clone()).unwrap() {
                result = Some(m);
            }
            // Duplicate insert of the same fragment must be harmless
            // while the message is still incomplete.
            if result.is_none() {
                let _ = set.insert(SimTime::ZERO, 1, i, frags.len(), frags[i].clone()).unwrap();
            }
        }
        prop_assert_eq!(result.unwrap(), payload);
    }

    #[test]
    fn bigint_matches_u128(a in any::<u64>(), b in 1u64..) {
        let (a128, b128) = (a as u128, b as u128);
        let ba = BigUint::from_u64(a);
        let bb = BigUint::from_u64(b);
        prop_assert_eq!(ba.add(&bb).to_bytes_be(), BigUint::from_bytes_be(&(a128 + b128).to_be_bytes()).to_bytes_be());
        prop_assert_eq!(ba.mul(&bb).to_bytes_be(), BigUint::from_bytes_be(&(a128 * b128).to_be_bytes()).to_bytes_be());
        let (q, r) = ba.div_rem(&bb);
        prop_assert_eq!(q.to_bytes_be(), BigUint::from_u64(a / b).to_bytes_be());
        prop_assert_eq!(r.to_bytes_be(), BigUint::from_u64(a % b).to_bytes_be());
    }

    #[test]
    fn bigint_byte_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_bytes_be(&bytes);
        let back = BigUint::from_bytes_be(&v.to_bytes_be());
        prop_assert_eq!(v, back);
    }

    #[test]
    fn bigint_modexp_identity(a in 2u64.., e in 0u64..64, m in 2u64..) {
        // a^e mod m computed by repeated mod-multiplication.
        let bm = BigUint::from_u64(m);
        let ba = BigUint::from_u64(a);
        let be = BigUint::from_u64(e);
        let fast = ba.mod_exp(&be, &bm);
        let mut slow = BigUint::one().rem(&bm);
        for _ in 0..e {
            slow = slow.mod_mul(&ba, &bm);
        }
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn rcstore_replicas_converge(ops in proptest::collection::vec(
        (0u8..3, 0u64..8, "[a-z]{1,6}"), 1..40)) {
        // Apply a random op sequence, alternating accepting replica,
        // then fully sync both ways: stores must agree.
        let mut a = RcStore::new(1);
        let mut b = RcStore::new(2);
        for (i, (kind, key, val)) in ops.iter().enumerate() {
            let uri = Uri::process(*key);
            let store = if i % 2 == 0 { &mut a } else { &mut b };
            match kind {
                0 | 1 => {
                    store.put(&uri, Assertion::new("attr", val.clone()), i as u64);
                }
                _ => store.delete(&uri, "attr", i as u64),
            }
        }
        for _ in 0..3 {
            for u in a.updates_since(b.version_vector(), 1000) {
                b.apply(u);
            }
            for u in b.updates_since(a.version_vector(), 1000) {
                a.apply(u);
            }
        }
        prop_assert_eq!(a.log_len(), b.log_len());
        for key in 0..8u64 {
            let uri = Uri::process(key);
            let va: Vec<_> = a.get(&uri).into_iter().map(|x| (x.name, x.value)).collect();
            let vb: Vec<_> = b.get(&uri).into_iter().map(|x| (x.name, x.value)).collect();
            prop_assert_eq!(va, vb);
        }
    }

    #[test]
    fn srudp_delivers_everything_fifo(sizes in proptest::collection::vec(0usize..10_000, 1..10),
                                      drop_mod in 2usize..9,
                                      seed in any::<u64>()) {
        let cfg = SrudpConfig { rto_initial: SimDuration::from_millis(10), ..Default::default() };
        let mut a = Srudp::new(1, cfg.clone());
        let mut b = Srudp::new(2, cfg);
        let ep_a = Endpoint::new(HostId(0), 5);
        let ep_b = Endpoint::new(HostId(1), 5);
        a.set_peer_endpoint(2, ep_b);
        for (i, &s) in sizes.iter().enumerate() {
            a.send_message(SimTime::ZERO, 2, Bytes::from(vec![i as u8; s])).unwrap();
        }
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut got = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..5000 {
            let mut moved = false;
            for o in a.drain() {
                if let snipe::wire::Out::Send { bytes, .. } = o {
                    moved = true;
                    if rng.gen_range(drop_mod as u64) != 0 {
                        b.on_packet(now, ep_a, bytes).unwrap();
                    }
                }
            }
            for o in b.drain() {
                match o {
                    snipe::wire::Out::Send { bytes, .. } => {
                        moved = true;
                        if rng.gen_range(drop_mod as u64) != 0 {
                            a.on_packet(now, ep_b, bytes).unwrap();
                        }
                    }
                    snipe::wire::Out::Deliver { msg, .. } => got.push(msg),
                    _ => {}
                }
            }
            if got.len() == sizes.len() {
                break;
            }
            if !moved {
                now += SimDuration::from_millis(15);
                a.on_timer(now);
                b.on_timer(now);
            }
        }
        prop_assert_eq!(got.len(), sizes.len(), "all messages delivered");
        for (i, m) in got.iter().enumerate() {
            prop_assert_eq!(m.len(), sizes[i], "FIFO order");
            if !m.is_empty() {
                prop_assert_eq!(m[0], i as u8);
            }
        }
    }

    #[test]
    fn route_cache_matches_fresh_computation(
        ops in proptest::collection::vec((0u8..6, 0usize..5, 0usize..3, any::<bool>()), 1..40),
        seed in any::<u64>()) {
        // Random fault script over a dual-homed topology: after every
        // mutation, every cached route answer must equal a fresh
        // (uncached) path computation — including negative answers.
        let mut topo = Topology::new();
        let nets = [
            topo.add_network("n0", Medium::ethernet100(), true),
            topo.add_network("n1", Medium::ethernet100(), true),
            topo.add_network("n2", Medium::atm155(), false),
        ];
        let mut hosts = Vec::new();
        for i in 0..5usize {
            let h = topo.add_host(HostCfg::named(format!("h{i}")));
            topo.attach(h, nets[i % 3]);
            if i % 2 == 0 {
                topo.attach(h, nets[(i + 1) % 3]);
            }
            hosts.push(h);
        }
        let mut w = World::new(topo, seed);
        for (kind, hi, ni, flag) in ops {
            let (h, n) = (hosts[hi], nets[ni]);
            match kind {
                0 => if flag { w.host_up(h) } else { w.host_down(h) },
                1 => w.set_net_up(n, flag),
                2 => {
                    let _ = w.set_iface_up(h, n, flag);
                }
                3 => w.set_net_loss(n, flag.then_some(0.5)),
                4 => w.set_partition(n, u32::from(flag)),
                _ => {} // query-only step: cache keeps serving old epoch
            }
            for &a in &hosts {
                for &b in &hosts {
                    prop_assert_eq!(w.route(a, b, None), w.route_uncached(a, b, None));
                    prop_assert_eq!(w.route(a, b, Some(n)), w.route_uncached(a, b, Some(n)));
                }
            }
        }
    }

    #[test]
    fn netstats_identical_with_route_cache_on_and_off(seed in any::<u64>()) {
        // E7-style run (dual-homed pair, mid-run blackhole and repair):
        // the route cache is a pure memo, so every traffic counter must
        // be identical whether it is enabled or not.
        let run = |cache: bool| {
            let mut topo = Topology::new();
            let eth = topo.add_network("eth", Medium::ethernet100(), true);
            let atm = topo.add_network("atm", Medium::atm155(), false);
            let mut hosts = Vec::new();
            for i in 0..4 {
                let h = topo.add_host(HostCfg::named(format!("h{i}")));
                topo.attach(h, eth);
                if i % 2 == 0 {
                    topo.attach(h, atm);
                }
                hosts.push(h);
            }
            let mut w = World::new(topo, seed);
            w.set_route_cache(cache);
            for (i, &h) in hosts.iter().enumerate() {
                let peer = Endpoint::new(hosts[(i + 1) % hosts.len()], 30);
                w.spawn(h, 30, Box::new(Flood { peer, burst: 3 }));
            }
            let flapper = hosts[1];
            w.schedule_fn(SimTime::ZERO + SimDuration::from_millis(20),
                          move |w| w.set_net_loss(eth, Some(0.3)));
            w.schedule_fn(SimTime::ZERO + SimDuration::from_millis(40),
                          move |w| w.host_down(flapper));
            w.schedule_fn(SimTime::ZERO + SimDuration::from_millis(60),
                          move |w| { w.host_up(flapper); w.set_net_loss(eth, None); });
            w.run_for(SimDuration::from_millis(100));
            (w.stats().clone(), eth, atm)
        };
        let (on, eth, atm) = run(true);
        let (off, _, _) = run(false);
        prop_assert_eq!(on.sent, off.sent);
        prop_assert_eq!(on.delivered, off.delivered);
        prop_assert_eq!(on.events, off.events);
        prop_assert_eq!(on.total_drops(), off.total_drops());
        prop_assert_eq!(on.bytes_on(eth), off.bytes_on(eth));
        prop_assert_eq!(on.bytes_on(atm), off.bytes_on(atm));
        // The memo did real work in the cached run.
        prop_assert_eq!(off.engine.route_cache_hits, 0);
        prop_assert!(on.engine.route_cache_hits > 0);
    }

    #[test]
    fn vm_checkpoint_transparent(n in 1i64..500, cut in 1u64..2000) {
        // Program: count down from n, emitting nothing; halting state
        // must match whether or not we checkpoint mid-flight.
        let program = Program {
            code: vec![
                Instr::PushI(n),
                Instr::Store(0),
                Instr::Load(0),
                Instr::Jz(9),
                Instr::Load(0),
                Instr::PushI(1),
                Instr::Sub,
                Instr::Store(0),
                Instr::Jmp(2),
                Instr::Halt,
            ],
            locals: 1,
            required_caps: 0,
        };
        program.verify_static().unwrap();
        let mut host = NullHost::default();
        let mut reference = Vm::new(&program, 0, Quotas::default());
        let out_ref = reference.run_slice(1_000_000, &mut host);
        prop_assert_eq!(out_ref, StepOutcome::Halted);

        let mut vm = Vm::new(&program, 0, Quotas::default());
        let mid = vm.run_slice(cut, &mut host);
        let mut resumed = Vm::restore(vm.checkpoint()).unwrap();
        if mid == StepOutcome::Running {
            let out = resumed.run_slice(1_000_000, &mut host);
            prop_assert_eq!(out, StepOutcome::Halted);
        }
        prop_assert_eq!(resumed.fuel_left() > 0, true);
        prop_assert_eq!(reference.fuel_left() > 0, true);
    }
}
