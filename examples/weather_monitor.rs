//! Weather monitoring — the paper's §1 motivating application:
//! "Monitoring of weather and prediction of catastrophic conditions to
//! provide planning and decision support for emergency relief."
//!
//! Sensor processes on many hosts publish readings into a multicast
//! group; an analysis process aggregates them and raises alerts; a
//! console serves the current picture over the simulated HTTP protocol
//! (§3.7), located through RC metadata. Mid-run one sensor host
//! crashes — the system degrades gracefully instead of failing.
//!
//! Run with: `cargo run --example weather_monitor`

use bytes::Bytes;
use snipe::core::console::{BrowserActor, ConsoleActor};
use snipe::core::{GroupEvent, SnipeApi, SnipeProcess, SnipeWorldBuilder};
use snipe::rcds::uri::Uri;
use snipe::util::time::SimDuration;
use std::sync::{Arc, Mutex};

const GROUP: &str = "weather-feed";

/// A sensor: samples a (synthetic) pressure value on a timer and
/// publishes to the group.
struct Sensor {
    station: u32,
    sample: u32,
}

impl SnipeProcess for Sensor {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.join_group(GROUP);
    }
    fn on_group_event(&mut self, api: &mut SnipeApi<'_, '_>, _g: &str, event: GroupEvent) {
        if event == GroupEvent::Joined {
            api.set_timer(SimDuration::from_millis(200), 1);
        }
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _token: u64) {
        self.sample += 1;
        // Synthetic pressure: station-dependent wave; station 3 dives
        // toward a storm.
        let base = 1013 - self.station as i64;
        let dip = if self.station == 3 && self.sample > 10 { self.sample as i64 * 2 } else { 0 };
        let pressure = base - dip;
        api.send_group(GROUP, format!("{}:{}", self.station, pressure).into_bytes());
        api.set_timer(SimDuration::from_millis(200), 1);
    }
}

/// The analyst: aggregates readings, detects the storm signature,
/// shares the latest picture with its console page through an Rc cell.
struct Analyst {
    latest: Arc<Mutex<String>>,
    readings: u32,
    alerts: u32,
}

impl SnipeProcess for Analyst {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.join_group(GROUP);
        api.log("analyst online, joining weather feed");
    }
    fn on_group_message(&mut self, api: &mut SnipeApi<'_, '_>, _g: &str, _origin: u64, msg: Bytes) {
        self.readings += 1;
        let text = String::from_utf8_lossy(&msg).into_owned();
        if let Some((station, pressure)) = text.split_once(':') {
            if let Ok(p) = pressure.parse::<i64>() {
                if p < 980 {
                    self.alerts += 1;
                    if self.alerts == 1 {
                        api.log(format!(
                            "ALERT: station {station} pressure {p} hPa — storm forming"
                        ));
                    }
                }
                *self.latest.lock().unwrap() = format!(
                    "readings={} alerts={} last: station {station} at {p} hPa",
                    self.readings, self.alerts
                );
            }
        }
    }
}

fn main() {
    // Five hosts: RC/RM/files on host0, sensors on 1..3, analyst+console
    // on host4.
    let mut world = SnipeWorldBuilder::lan(5, 7).build();
    world.echo_logs();
    let latest = Arc::new(Mutex::new("no data yet".to_string()));

    for station in 1..=3u32 {
        world.register_process(format!("sensor{station}"), move |_| {
            Box::new(Sensor { station, sample: 0 })
        });
    }
    let l = latest.clone();
    world.register_process("analyst", move |_| {
        Box::new(Analyst { latest: l.clone(), readings: 0, alerts: 0 })
    });

    for station in 1..=3u32 {
        world
            .spawn_on(&format!("host{station}"), &format!("sensor{station}"), Bytes::new())
            .expect("spawn sensor");
    }
    world.spawn_on("host4", "analyst", Bytes::new()).expect("spawn analyst");

    // Console: publishes the analyst's picture at a stable URL.
    let rc = world.rc_endpoints().to_vec();
    let url = Uri::parse("http://weather.snipe/").unwrap();
    let page_data = latest.clone();
    let console = ConsoleActor::new(url.clone(), rc.clone())
        .page("/status", move || page_data.lock().unwrap().clone());
    let h4 = world.sim_ref().topology().host_by_name("host4").unwrap();
    world.sim().spawn(h4, 80, Box::new(console));

    // A browser polls the console twice: before and after the crash.
    let responses = Arc::new(Mutex::new(Vec::new()));
    let browser = BrowserActor::new(
        rc,
        vec![
            (SimDuration::from_secs(4), url.clone(), "/status".into()),
            (SimDuration::from_secs(8), url, "/status".into()),
        ],
        responses.clone(),
    );
    let h0 = world.sim_ref().topology().host_by_name("host0").unwrap();
    world.sim().spawn(h0, 8080, Box::new(browser));

    // Crash sensor host 1 at t=6s: the feed must keep flowing.
    let h1 = world.sim_ref().topology().host_by_name("host1").unwrap();
    world.sim().schedule_fn(
        snipe::util::time::SimTime::ZERO + SimDuration::from_secs(6),
        move |w| {
            println!(">>> host1 (sensor 1) crashes");
            w.host_down(h1);
        },
    );

    world.run_for_secs(14);

    println!("\n--- console fetches ---");
    for (status, body) in responses.lock().unwrap().iter() {
        println!("HTTP {status}: {body}");
    }
    println!("\nfinal picture: {}", latest.lock().unwrap());
}
