//! Quickstart: a five-minute tour of SNIPE.
//!
//! Builds a four-host LAN testbed (RC metadata service, per-host
//! daemons, a resource manager and replicated file servers come up
//! automatically), then shows the client library's core moves:
//! global naming + reliable messaging, spawning through a daemon,
//! and the replicated file store.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use snipe::core::api::TicketResult;
use snipe::core::{ProcRef, SnipeApi, SnipeProcess, SnipeWorldBuilder, SpawnTarget};

/// A greeter: answers every message with a greeting.
struct Greeter;
impl SnipeProcess for Greeter {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.log(format!("greeter up on {}", api.my_hostname()));
    }
    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, from: ProcRef, msg: Bytes) {
        let name = String::from_utf8_lossy(&msg);
        api.send(from.key, format!("hello, {name}!").into_bytes());
    }
}

/// The tour guide: spawns a greeter, talks to it, then uses the file
/// store.
struct Tour {
    spawn_ticket: u64,
    write_ticket: u64,
    read_ticket: u64,
}

impl SnipeProcess for Tour {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.log(format!(
            "tour starting on {} as {} ({})",
            api.my_hostname(),
            api.my_urn(),
            api.my_endpoint()
        ));
        // 1. Spawn a process on another host through its SNIPE daemon.
        self.spawn_ticket = api.spawn(SpawnTarget::Host("host2".into()), "greeter", Bytes::new());
    }

    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, ticket: u64, result: TicketResult) {
        if ticket == self.spawn_ticket {
            let TicketResult::Spawned(Ok(greeter)) = result else {
                api.log("spawn failed");
                api.exit();
                return;
            };
            api.log(format!("spawned greeter: key {} at {}", greeter.key, greeter.endpoint));
            // 2. Reliable message by global key — location resolved via
            //    the RC metadata servers.
            api.send(greeter.key, b"snipe user".to_vec());
        } else if ticket == self.write_ticket {
            api.log("checkpoint file stored (replication daemons will copy it)");
            self.read_ticket = api.read_file("lifn:snipe:file:quickstart");
        } else if ticket == self.read_ticket {
            if let TicketResult::FileRead(Ok(content)) = result {
                api.log(format!("read back: {}", String::from_utf8_lossy(&content)));
            }
            api.log("tour complete");
            api.exit();
        }
    }

    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, _from: ProcRef, msg: Bytes) {
        api.log(format!("greeter says: {}", String::from_utf8_lossy(&msg)));
        // 3. Store a file on the replicated SNIPE file servers.
        self.write_ticket =
            api.write_file("lifn:snipe:file:quickstart", b"state worth keeping".to_vec());
    }
}

fn main() {
    let mut world = SnipeWorldBuilder::lan(4, 2026).build();
    world.echo_logs();
    world.register_process("greeter", |_| Box::new(Greeter));
    world.register_process("tour", |_| {
        Box::new(Tour { spawn_ticket: 0, write_ticket: 0, read_ticket: 0 })
    });
    world.spawn_on("host0", "tour", Bytes::new()).expect("spawn tour");
    world.run_for_secs(10);
    println!(
        "simulated {}s, {} events, {} packets delivered",
        10,
        world.sim_ref().stats().events,
        world.sim_ref().stats().delivered
    );
}
