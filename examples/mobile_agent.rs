//! Mobile code in playgrounds — §3.6/§5.8.
//!
//! A signed bytecode agent is executed inside a playground under fuel
//! and capability quotas; we then (1) checkpoint it mid-flight and
//! resume it on a different host — the migration path for mobile code —
//! (2) demonstrate that a tampered image and an unsigned image are
//! rejected, and (3) let a runaway agent hit its fuel quota.
//!
//! Run with: `cargo run --example mobile_agent`

use bytes::Bytes;
use snipe::crypto::sign::KeyPair;
use snipe::netsim::actor::{Actor, Ctx, Event};
use snipe::netsim::medium::Medium;
use snipe::netsim::topology::{Endpoint, HostCfg, Topology};
use snipe::netsim::world::World;
use snipe::playground::bytecode::{CodeImage, Instr, Program};
use snipe::playground::playground::{
    PlaygroundActor, PlaygroundConfig, PlaygroundMsg, SIG_CHECKPOINT,
};
use snipe::playground::vm::{sys, Quotas, CAP_EMIT};
use snipe::util::codec::WireDecode;
use snipe::util::rng::Xoshiro256;
use snipe::util::time::SimDuration;
use snipe::wire::frame::{open, Proto};
use std::sync::{Arc, Mutex};

/// Collects playground reports.
struct Supervisor {
    log: Arc<Mutex<Vec<PlaygroundMsg>>>,
}

impl Actor for Supervisor {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Packet { payload, .. } = event {
            if let Ok((Proto::Raw, body)) = open(payload) {
                if let Ok(m) = PlaygroundMsg::decode_from_bytes(body) {
                    self.log.lock().unwrap().push(m);
                }
            }
        }
    }
}

/// sum(1..=n) computed the slow way, then emitted.
fn summing_agent(n: i64) -> Program {
    Program {
        code: vec![
            Instr::PushI(n),
            Instr::Store(1),
            Instr::Load(1), // 2: loop head
            Instr::Jz(13),
            Instr::Load(0),
            Instr::Load(1),
            Instr::Add,
            Instr::Store(0),
            Instr::Load(1),
            Instr::PushI(1),
            Instr::Sub,
            Instr::Store(1),
            Instr::Jmp(2),
            Instr::Load(0), // 13
            Instr::Syscall(sys::EMIT),
            Instr::Halt,
        ],
        locals: 2,
        required_caps: CAP_EMIT,
    }
}

fn world3() -> (World, Vec<snipe::util::id::HostId>) {
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let hosts: Vec<_> = (0..3)
        .map(|i| {
            let h = topo.add_host(HostCfg::named(format!("pg{i}")));
            topo.attach(h, net);
            h
        })
        .collect();
    (World::new(topo, 4), hosts)
}

fn cfg(signer: &KeyPair, sup: Endpoint, fuel: u64) -> PlaygroundConfig {
    PlaygroundConfig {
        code_signer: signer.public.clone(),
        granted_caps: CAP_EMIT,
        quotas: Quotas { fuel, ..Quotas::default() },
        slice: 2_000,
        slice_interval: SimDuration::from_millis(1),
        supervisor: sup,
        address_book: Default::default(),
    }
}

fn main() {
    let mut rng = Xoshiro256::seed_from_u64(1);
    let signer = KeyPair::generate_default(&mut rng);
    let mallory = KeyPair::generate_default(&mut rng);
    let (mut world, hosts) = world3();
    let log = Arc::new(Mutex::new(Vec::new()));
    let sup = Endpoint::new(hosts[0], 10);
    world.spawn(hosts[0], 10, Box::new(Supervisor { log: log.clone() }));

    // 1. A properly signed agent: checkpoint mid-run, resume elsewhere.
    let image = CodeImage::sign(&mut rng, &signer, "summing-agent", &summing_agent(100_000));
    let pg = PlaygroundActor::new(cfg(&signer, sup, 10_000_000), image.clone(), vec![]);
    let agent_ep = world.spawn(hosts[1], 100, Box::new(pg)).unwrap();
    world.run_for(SimDuration::from_millis(50)); // partially executed
    world.signal(None, agent_ep, SIG_CHECKPOINT);
    world.run_for(SimDuration::from_millis(5));
    let ckpt = log
        .lock()
        .unwrap()
        .iter()
        .find_map(|m| match m {
            PlaygroundMsg::Checkpoint { state } => Some(state.clone()),
            _ => None,
        })
        .expect("checkpoint captured");
    println!("checkpoint taken on pg1: {} bytes of VM state", ckpt.len());
    // Kill the original; resume the agent on pg2 from the checkpoint.
    world.kill(agent_ep);
    let resumed =
        PlaygroundActor::from_checkpoint(cfg(&signer, sup, 10_000_000), image.clone(), ckpt)
            .expect("restorable");
    world.spawn(hosts[2], 100, Box::new(resumed));
    world.run_for(SimDuration::from_secs(5));
    let done = log.lock().unwrap().iter().find_map(|m| match m {
        PlaygroundMsg::Done { outputs, fuel_used } => Some((outputs.clone(), *fuel_used)),
        _ => None,
    });
    let (outputs, fuel) = done.expect("agent finished after migration");
    println!(
        "agent finished on pg2: sum = {} (expected {}), fuel used {}",
        outputs[0],
        100_000i64 * 100_001 / 2,
        fuel
    );
    assert_eq!(outputs[0], 100_000i64 * 100_001 / 2);

    // 2. A tampered image is rejected before execution.
    let mut tampered = image.clone();
    let mut body = tampered.program.to_vec();
    body[4] ^= 0xFF;
    tampered.program = Bytes::from(body);
    world.spawn(
        hosts[1],
        101,
        Box::new(PlaygroundActor::new(cfg(&signer, sup, 1_000_000), tampered, vec![])),
    );
    // 3. An image signed by an untrusted key is rejected.
    let evil = CodeImage::sign(&mut rng, &mallory, "trojan", &summing_agent(10));
    world.spawn(
        hosts[1],
        102,
        Box::new(PlaygroundActor::new(cfg(&signer, sup, 1_000_000), evil, vec![])),
    );
    // 4. A runaway agent dies at its fuel quota.
    let spin = Program { code: vec![Instr::Jmp(0)], locals: 0, required_caps: 0 };
    let runaway = CodeImage::sign(&mut rng, &signer, "runaway", &spin);
    world.spawn(
        hosts[1],
        103,
        Box::new(PlaygroundActor::new(cfg(&signer, sup, 50_000), runaway, vec![])),
    );
    world.run_for(SimDuration::from_secs(2));

    println!("\n--- supervisor log ---");
    for m in log.lock().unwrap().iter() {
        match m {
            PlaygroundMsg::Done { outputs, fuel_used } => {
                println!("DONE outputs={outputs:?} fuel={fuel_used}")
            }
            PlaygroundMsg::Failed { reason } => println!("REJECTED/KILLED: {reason}"),
            PlaygroundMsg::Checkpoint { state } => println!("CHECKPOINT {} bytes", state.len()),
        }
    }
    let failures =
        log.lock().unwrap().iter().filter(|m| matches!(m, PlaygroundMsg::Failed { .. })).count();
    assert_eq!(failures, 3, "tampered + unsigned + runaway must all be stopped");
    println!("\nall hostile agents contained; the legitimate agent migrated and completed.");
}
