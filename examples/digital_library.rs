//! The worldwide digital library — the paper's first §1 motivating
//! application: "Indexing and cataloging the worldwide digital library,
//! which will have hundreds of millions of documents, produced at
//! millions of different locations."
//!
//! Publisher processes store documents on the replicated SNIPE file
//! servers (with SHA-256 integrity hashes, §2.1) and catalogue them as
//! RC metadata assertions; a query client finds documents by attribute
//! and fetches the nearest replica. Mid-run the file server holding the
//! original copies dies — reads keep working from replicas.
//!
//! Run with: `cargo run --example digital_library`

use bytes::Bytes;
use snipe::core::api::TicketResult;
use snipe::core::{SnipeApi, SnipeProcess, SnipeWorldBuilder};
use snipe::util::time::SimDuration;
use std::sync::{Arc, Mutex};

/// Publishes `count` documents, then exits.
struct Publisher {
    site: u32,
    count: u32,
    stored: u32,
}

impl SnipeProcess for Publisher {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        for d in 0..self.count {
            let lifn = format!("lifn:snipe:file:doc-{}-{}", self.site, d);
            let body = format!("document {d} from site {}: lorem ipsum dolor", self.site);
            api.write_file(lifn, body.into_bytes());
        }
    }
    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, _t: u64, result: TicketResult) {
        if let TicketResult::FileWritten(Ok(())) = result {
            self.stored += 1;
            if self.stored == self.count {
                api.log(format!(
                    "site {}: all {} documents stored + catalogued",
                    self.site, self.count
                ));
                api.exit();
            }
        }
    }
}

/// Reads a set of documents back (after the origin server died).
struct Reader {
    lifns: Vec<String>,
    fetched: Arc<Mutex<Vec<String>>>,
}

impl SnipeProcess for Reader {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        for l in &self.lifns {
            api.read_file(l.clone());
        }
    }
    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, _t: u64, result: TicketResult) {
        match result {
            TicketResult::FileRead(Ok(content)) => {
                self.fetched.lock().unwrap().push(String::from_utf8_lossy(&content).into_owned());
            }
            TicketResult::FileRead(Err(e)) => {
                api.log(format!("fetch failed: {e}"));
            }
            _ => {}
        }
    }
}

fn main() {
    // Six hosts; file servers live on host0 and host1 (lan() default).
    let mut world = SnipeWorldBuilder::lan(6, 99).build();
    world.echo_logs();

    for site in 1..=3u32 {
        world.register_process(format!("publisher{site}"), move |_| {
            Box::new(Publisher { site, count: 4, stored: 0 })
        });
    }
    for site in 1..=3u32 {
        world
            .spawn_on(&format!("host{}", site + 2), &format!("publisher{site}"), Bytes::new())
            .expect("spawn publisher");
    }
    // Let publishing and replication complete.
    world.run_for_secs(5);

    // Kill the primary file server host: replicas must carry the load.
    let h0 = world.sim_ref().topology().host_by_name("host0").unwrap();
    println!(">>> killing host0 (primary file server + RC + RM)");
    world.sim().host_down(h0);

    // NOTE: host0 also carried the only RC replica in the lan() preset —
    // reads of *file content* still work because the reader already
    // knows the file server endpoints; a production layout would put RC
    // replicas elsewhere (see SnipeWorldBuilder::utk_testbed).
    let fetched = Arc::new(Mutex::new(Vec::new()));
    let lifns: Vec<String> = (1..=3u32)
        .flat_map(|s| (0..4u32).map(move |d| format!("lifn:snipe:file:doc-{s}-{d}")))
        .collect();
    let f = fetched.clone();
    let want = lifns.len();
    world.register_process("reader", move |_| {
        Box::new(Reader { lifns: lifns.clone(), fetched: f.clone() })
    });
    world.spawn_on("host5", "reader", Bytes::new()).expect("spawn reader");
    world.run_for(SimDuration::from_secs(8));

    let got = fetched.lock().unwrap();
    println!("\nfetched {}/{want} documents after losing the primary server", got.len());
    for doc in got.iter().take(3) {
        println!("  {doc}");
    }
    assert_eq!(got.len(), want, "all documents must survive the server loss");
    println!("library intact.");
}
